//! Analytic throughput models of the competitor libraries.
//!
//! The paper's GE2VAL figures compare DPLASMA against Intel MKL, PLASMA,
//! ScaLAPACK and Elemental.  Those libraries cannot be rerun inside this
//! reproduction (proprietary binaries, MPI testbed), so the figure harnesses
//! draw their curves from the analytic models below.  The models capture the
//! *algorithm class* of each competitor — which is exactly the property the
//! paper attributes their behaviour to:
//!
//! * **one-stage** reductions (ScaLAPACK, Elemental, pre-2015 MKL) execute
//!   ~50% of their flops in Level-2 BLAS (Großer & Lang), so their rate is a
//!   harmonic mean of a memory-bound rate and a compute-bound rate and
//!   saturates regardless of core count;
//! * **Elemental** additionally switches to Chan's algorithm for
//!   `m >= 1.2 n`, reducing the executed flops (its reported rate, normalised
//!   by the BIDIAG operation count, rises on tall-skinny matrices);
//! * **two-stage MKL** (>= 11.2) behaves like a tiled FLATTS code whose
//!   efficiency grows with the problem size.
//!
//! All constants are calibrated against the shapes of Figures 2–4 of the
//! paper (the miriel node: 24 Haswell cores, 37 GFlop/s per core) and are
//! documented in `EXPERIMENTS.md`.

use crate::chan::chan_flops;
use crate::one_stage::one_stage_flops;
use serde::{Deserialize, Serialize};

/// Hardware characteristics of one node (and the cluster built from it).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Sustained Level-3 GFlop/s per core (the paper measures 37).
    pub core_gflops: f64,
    /// Sustained memory-bound (Level-2 BLAS) GFlop/s per node.
    pub node_level2_gflops: f64,
}

impl MachineSpec {
    /// One miriel-like node: 24 cores at 37 GFlop/s, ~25 GFlop/s of
    /// memory-bound Level-2 throughput.
    pub fn paper_node() -> Self {
        Self {
            nodes: 1,
            cores_per_node: 24,
            core_gflops: 37.0,
            node_level2_gflops: 25.0,
        }
    }

    /// A cluster of miriel-like nodes.
    pub fn paper_cluster(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::paper_node()
        }
    }

    /// Aggregate Level-3 peak of the machine.
    pub fn level3_peak(&self) -> f64 {
        self.nodes as f64 * self.cores_per_node as f64 * self.core_gflops
    }
}

/// Competitor algorithm classes modelled by [`PerfModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompetitorClass {
    /// Intel MKL >= 11.2: shared-memory two-stage reduction.
    MklLike,
    /// ScaLAPACK `PxGEBRD`: distributed one-stage reduction.
    ScalapackLike,
    /// Elemental: one-stage reduction with Chan's switch at `m >= 1.2 n`.
    ElementalLike,
}

impl CompetitorClass {
    /// Display name used in the figure tables.
    pub fn name(&self) -> &'static str {
        match self {
            CompetitorClass::MklLike => "MKL",
            CompetitorClass::ScalapackLike => "Scalapack",
            CompetitorClass::ElementalLike => "Elemental",
        }
    }
}

/// An analytic GE2VAL throughput model for one competitor on one machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Which competitor class is modelled.
    pub class: CompetitorClass,
    /// The machine it runs on.
    pub machine: MachineSpec,
}

impl PerfModel {
    /// Create a model.
    pub fn new(class: CompetitorClass, machine: MachineSpec) -> Self {
        Self { class, machine }
    }

    /// Level-3 efficiency of blocked kernels as a function of the short
    /// matrix dimension (small problems cannot feed all the cores).
    fn size_efficiency(n: usize) -> f64 {
        let n = n as f64;
        n / (n + 4000.0)
    }

    /// Estimated execution time (seconds) of the competitor's GE2VAL on an
    /// `m x n` matrix.
    pub fn time(&self, m: usize, n: usize) -> f64 {
        let (m, n) = if m >= n { (m, n) } else { (n, m) };
        let spec = self.machine;
        match self.class {
            CompetitorClass::MklLike => {
                // Two-stage shared-memory code (single node only): behaves
                // like a FLATTS tiled reduction, i.e. Level-3 bound with an
                // efficiency that grows with the matrix size, plus a
                // memory-bound second stage of ~8 n^2 nb flops.
                let flops = one_stage_flops(m, n);
                let eff = 0.62 * Self::size_efficiency(n);
                let stage1 =
                    flops / (spec.cores_per_node as f64 * spec.core_gflops * 1.0e9 * eff.max(1e-3));
                let stage2 =
                    8.0 * (n as f64) * (n as f64) * 160.0 / (spec.node_level2_gflops * 1.0e9);
                stage1 + stage2
            }
            CompetitorClass::ScalapackLike => {
                // One-stage: 50% Level-2 (memory bound, scales weakly with
                // the node count), 50% Level-3.
                let flops = one_stage_flops(m, n);
                let l2_rate = spec.node_level2_gflops * 1.0e9 * (spec.nodes as f64).powf(0.45);
                let l3_rate = 0.5 * spec.level3_peak() * 1.0e9;
                0.5 * flops / l2_rate + 0.5 * flops / l3_rate
            }
            CompetitorClass::ElementalLike => {
                // Same one-stage engine, but Chan's switch reduces the flops
                // for tall matrices and its QR phase is Level-3 rich.
                let use_chan = 5 * m >= 6 * n;
                let l2_rate = spec.node_level2_gflops * 1.0e9 * (spec.nodes as f64).powf(0.55);
                let l3_rate = 0.6 * spec.level3_peak() * 1.0e9;
                if use_chan {
                    let qr_flops = 2.0 * (n as f64) * (n as f64) * (m as f64 - n as f64 / 3.0);
                    let bid_flops = one_stage_flops(n, n);
                    // The QR phase is Level-3; the square bidiagonalization is
                    // the usual 50/50 split.  Elemental's QR scalability is
                    // limited (the paper observes a plateau around 10 nodes).
                    let qr_scal = (spec.nodes as f64).min(10.0) / spec.nodes as f64;
                    qr_flops / (l3_rate * qr_scal)
                        + 0.5 * bid_flops / l2_rate
                        + 0.5 * bid_flops / l3_rate
                } else {
                    let flops = one_stage_flops(m, n);
                    0.5 * flops / l2_rate + 0.5 * flops / l3_rate
                }
            }
        }
    }

    /// GE2VAL rate in GFlop/s, normalised (as in the paper) by the BIDIAG
    /// operation count `4 n^2 (m - n/3)` regardless of the algorithm run.
    pub fn gflops(&self, m: usize, n: usize) -> f64 {
        let (mm, nn) = if m >= n { (m, n) } else { (n, m) };
        let reported = 4.0 * (nn as f64) * (nn as f64) * (mm as f64 - nn as f64 / 3.0);
        reported / self.time(m, n) / 1.0e9
    }
}

/// Chan flops re-export used by the harnesses when reporting Elemental-like
/// models (convenience).
pub fn chan_model_flops(m: usize, n: usize) -> f64 {
    chan_flops(m, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_stage_models_saturate_with_cores() {
        let small = PerfModel::new(CompetitorClass::ScalapackLike, MachineSpec::paper_node());
        let big = PerfModel::new(
            CompetitorClass::ScalapackLike,
            MachineSpec {
                cores_per_node: 96,
                ..MachineSpec::paper_node()
            },
        );
        let r1 = small.gflops(20_000, 20_000);
        let r2 = big.gflops(20_000, 20_000);
        // Quadrupling the cores cannot even double the one-stage rate.
        assert!(
            r2 < 2.0 * r1,
            "one-stage model must be memory bound ({r1} -> {r2})"
        );
        // And the absolute level matches the ~50 GFlop/s plateau of the paper.
        assert!(
            r1 > 20.0 && r1 < 90.0,
            "unexpected ScaLAPACK-like rate {r1}"
        );
    }

    #[test]
    fn mkl_like_improves_with_size_and_beats_one_stage() {
        let mkl = PerfModel::new(CompetitorClass::MklLike, MachineSpec::paper_node());
        let sca = PerfModel::new(CompetitorClass::ScalapackLike, MachineSpec::paper_node());
        let small = mkl.gflops(5_000, 5_000);
        let large = mkl.gflops(30_000, 30_000);
        assert!(large > small);
        assert!(large > sca.gflops(30_000, 30_000) * 3.0);
        assert!(large > 200.0 && large < 700.0, "MKL-like rate {large}");
    }

    #[test]
    fn elemental_benefits_from_chan_on_tall_skinny() {
        let ele = PerfModel::new(CompetitorClass::ElementalLike, MachineSpec::paper_node());
        let sca = PerfModel::new(CompetitorClass::ScalapackLike, MachineSpec::paper_node());
        // Tall and skinny: Elemental's reported rate outgrows ScaLAPACK's.
        let m = 200_000;
        let n = 2_000;
        assert!(ele.gflops(m, n) > 1.5 * sca.gflops(m, n));
        // Square: both are one-stage and comparable.
        let es = ele.gflops(20_000, 20_000);
        let ss = sca.gflops(20_000, 20_000);
        assert!(es < 2.0 * ss && ss < 2.0 * es);
    }

    #[test]
    fn distributed_scaling_is_sublinear() {
        let one = PerfModel::new(
            CompetitorClass::ElementalLike,
            MachineSpec::paper_cluster(1),
        );
        let many = PerfModel::new(
            CompetitorClass::ElementalLike,
            MachineSpec::paper_cluster(25),
        );
        let r1 = one.gflops(2_000_000, 2_000);
        let r25 = many.gflops(2_000_000, 2_000);
        assert!(r25 > r1, "more nodes must not slow the model down");
        assert!(r25 < 25.0 * r1, "scaling must be sublinear");
    }
}
