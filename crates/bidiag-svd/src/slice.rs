//! Spectrum slicing: partition the Golub–Kahan spectrum into disjoint
//! multi-value intervals with Sturm counts, then finish every interval
//! with a batched, bracketed Newton/bisection hybrid.
//!
//! This is the *parallel* path of the subsystem.  The old runtime fan-out
//! spawned one task per singular value (512 tasks for the reference case,
//! each re-streaming the tridiagonal ~50 times); slicing instead fans out
//! one task per [`SpectrumSlice`] — a bracket provably containing a known
//! contiguous range of eigenvalue ranks — so the task count is
//! `ceil(k / values_per_slice)` and every task does enough work to
//! amortize its scheduling.  Within a slice all values advance together as
//! a *bisection front*: each round gathers one probe per unconverged value
//! and evaluates the whole batch in a single pass over the off-diagonal
//! data ([`GkSturm::count_and_newton_multi`]), switching from rank
//! bisection to safeguarded Newton (on the LDLᵀ pivot derivative — see the
//! batched evaluator's docs) as soon as a value's bracket isolates it.

use crate::sturm::GkSturm;

/// Number of batched boundary-refinement rounds when partitioning the
/// spectrum.  Boundaries only balance work — they need to separate rank
/// ranges, not converge to eigenvalues — so a fixed, modest number of
/// halvings (bracket width `bound / 2^24`) is plenty.
const BOUNDARY_ROUNDS: usize = 24;

/// Hard cap on front iterations inside one slice; the mandatory bisection
/// fallback every fourth round guarantees geometric bracket shrinkage, so
/// this is unreachable except as a safety net (256 quarter-speed halvings
/// cross the full exponent range of f64).
const MAX_FRONT_ROUNDS: usize = 1024;

/// One work unit of the sliced BD2VAL path: a half-open eigenvalue bracket
/// `(lo, hi]` of the Golub–Kahan tridiagonal together with the Sturm
/// counts at its ends, so it provably contains the eigenvalues of ranks
/// `count_lo .. count_hi` (0-based, counting from the bottom of the
/// spectrum) and nothing else.
#[derive(Clone, Copy, Debug)]
pub struct SpectrumSlice {
    /// Lower bracket end.
    pub lo: f64,
    /// Upper bracket end.
    pub hi: f64,
    /// Sturm count at `lo` (eigenvalues strictly below `lo`).
    pub count_lo: usize,
    /// Sturm count at `hi`.
    pub count_hi: usize,
}

impl SpectrumSlice {
    /// Number of *singular values* this slice resolves: eigenvalue ranks
    /// in `[count_lo, count_hi)` clipped to the positive half `[k, 2k)` of
    /// the GK spectrum.
    pub fn num_values(&self, k: usize) -> usize {
        let lo = self.count_lo.max(k);
        self.count_hi.saturating_sub(lo)
    }
}

/// Partition the non-negative half of the GK spectrum into disjoint slices
/// of at most `values_per_slice` singular values each.
///
/// Boundary positions are found by *batched* rank bisection: every round
/// evaluates all boundary midpoints in one pass over the data, and each
/// boundary's final position is a point whose Sturm count was actually
/// measured — so the returned slices tile `[0, bound]` with consistent,
/// gap-free rank ranges no matter how clustered the spectrum is (a
/// boundary that lands inside a cluster simply yields a wider slice).
pub fn slice_spectrum(sturm: &GkSturm, values_per_slice: usize) -> Vec<SpectrumSlice> {
    let k = sturm.num_values();
    if k == 0 {
        return Vec::new();
    }
    let vps = values_per_slice.max(1);
    let bound = sturm.bound();
    if bound == 0.0 {
        // All singular values are exactly zero: one degenerate slice.
        return vec![SpectrumSlice {
            lo: 0.0,
            hi: 0.0,
            count_lo: 0,
            count_hi: 2 * k,
        }];
    }
    let hi0 = bound * (1.0 + 4.0 * f64::EPSILON);
    let c0 = sturm.count(0.0);
    let c_top = sturm.count(hi0);
    let nslices = k.div_ceil(vps);
    if nslices <= 1 {
        return vec![SpectrumSlice {
            lo: 0.0,
            hi: hi0,
            count_lo: c0,
            count_hi: c_top,
        }];
    }

    // One interior boundary per rank quantile k + r * vps; each keeps a
    // bracket plus the measured count at its lower end.
    struct Boundary {
        target: usize,
        xlo: f64,
        xhi: f64,
        c_at_xlo: usize,
    }
    let mut bs: Vec<Boundary> = (1..nslices)
        .map(|r| Boundary {
            target: k + r * vps,
            xlo: 0.0,
            xhi: hi0,
            c_at_xlo: c0,
        })
        .collect();
    let mut probes = vec![0.0f64; bs.len()];
    let mut counts = vec![0usize; bs.len()];
    for _ in 0..BOUNDARY_ROUNDS {
        for (p, b) in probes.iter_mut().zip(&bs) {
            *p = 0.5 * (b.xlo + b.xhi);
        }
        sturm.count_multi(&probes, &mut counts);
        for ((b, &p), &c) in bs.iter_mut().zip(&probes).zip(&counts) {
            if c > b.target {
                b.xhi = p;
            } else {
                b.xlo = p;
                b.c_at_xlo = c;
            }
        }
    }

    // Assemble the boundary points (position + measured count), tile them
    // into slices, and drop the empty ones.
    let mut points: Vec<(f64, usize)> = Vec::with_capacity(nslices + 1);
    points.push((0.0, c0));
    points.extend(bs.iter().map(|b| (b.xlo, b.c_at_xlo)));
    points.push((hi0, c_top));
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut slices = Vec::with_capacity(nslices);
    for w in points.windows(2) {
        let ((lo, clo), (hi, chi)) = (w[0], w[1]);
        let s = SpectrumSlice {
            lo,
            hi,
            count_lo: clo,
            count_hi: chi,
        };
        if s.num_values(k) > 0 {
            slices.push(s);
        }
    }
    slices
}

/// Per-value bracket state inside a slice front.
struct Front {
    /// Eigenvalue rank (0-based from the bottom of the GK spectrum).
    target: usize,
    lo: f64,
    hi: f64,
    count_lo: usize,
    count_hi: usize,
    /// Last probe and its Newton sum, if any.
    last: Option<(f64, f64)>,
    value: Option<f64>,
}

/// Resolve every singular value of `slice`: returns `(j, sigma_j)` pairs
/// where `j` is the 0-based index into the non-increasing singular-value
/// ordering (`j = 2k - 1 - rank`).
///
/// `rel_tol` is the relative bracket-width stopping tolerance (floored at
/// machine epsilon); values whose bracket collapses below the spectrum's
/// zero floor are returned as the bracket midpoint (effectively zero).
pub fn solve_slice(sturm: &GkSturm, slice: &SpectrumSlice, rel_tol: f64) -> Vec<(usize, f64)> {
    let k = sturm.num_values();
    let t_lo = slice.count_lo.max(k);
    if k == 0 || slice.count_hi <= t_lo {
        return Vec::new();
    }
    let tol = rel_tol.max(f64::EPSILON);
    let floor = sturm.zero_floor();

    let mut fronts: Vec<Front> = (t_lo..slice.count_hi)
        .map(|t| Front {
            target: t,
            lo: slice.lo,
            hi: slice.hi,
            count_lo: slice.count_lo,
            count_hi: slice.count_hi,
            last: None,
            value: if slice.hi <= slice.lo {
                Some(slice.lo)
            } else {
                None
            },
        })
        .collect();

    let mut probes: Vec<f64> = Vec::with_capacity(fronts.len());
    let mut active: Vec<usize> = Vec::with_capacity(fronts.len());
    let mut counts: Vec<usize> = Vec::new();
    let mut omegas: Vec<f64> = Vec::new();
    for round in 0..MAX_FRONT_ROUNDS {
        probes.clear();
        active.clear();
        for (i, f) in fronts.iter().enumerate() {
            if f.value.is_some() {
                continue;
            }
            let width = f.hi - f.lo;
            let mid = 0.5 * (f.lo + f.hi);
            let isolated = f.count_hi - f.count_lo == 1;
            // Newton probe once isolated, with two safeguards: the probe
            // must fall well inside the bracket, and every fourth round
            // bisects unconditionally so the bracket keeps shrinking even
            // when Newton stagnates on one side of the root.
            let probe = match (isolated, round % 4 != 3, f.last) {
                (true, true, Some((x, w))) if w.is_finite() && w != 0.0 => {
                    let p = x - 1.0 / w;
                    if p > f.lo + 0.01 * width && p < f.hi - 0.01 * width {
                        p
                    } else {
                        mid
                    }
                }
                _ => mid,
            };
            probes.push(probe);
            active.push(i);
        }
        if active.is_empty() {
            break;
        }
        counts.resize(probes.len(), 0);
        omegas.resize(probes.len(), 0.0);
        sturm.count_and_newton_multi(&probes, &mut counts, &mut omegas);
        for (a, (&p, (&c, &w))) in active
            .iter()
            .zip(probes.iter().zip(counts.iter().zip(omegas.iter())))
        {
            let f = &mut fronts[*a];
            f.last = Some((p, w));
            if c > f.target {
                f.hi = p;
                f.count_hi = c;
            } else {
                f.lo = p;
                f.count_lo = c;
            }
            if f.hi - f.lo <= tol * (f.lo + f.hi) || f.hi <= floor {
                f.value = Some(0.5 * (f.lo + f.hi));
            }
        }
    }

    fronts
        .into_iter()
        .map(|f| {
            let v = f.value.unwrap_or(0.5 * (f.lo + f.hi));
            (2 * k - 1 - f.target, v)
        })
        .collect()
}

/// Sequential driver of the sliced path: identical arithmetic to running
/// one runtime task per slice (slices are solved independently), so the
/// result is bitwise the same at every thread count.
pub fn sliced_singular_values(
    d: &[f64],
    e: &[f64],
    values_per_slice: usize,
    rel_tol: f64,
) -> Vec<f64> {
    let sturm = GkSturm::new(d, e);
    let k = sturm.num_values();
    let mut sv = vec![0.0f64; k];
    for slice in slice_spectrum(&sturm, values_per_slice) {
        for (j, v) in solve_slice(&sturm, &slice, rel_tol) {
            sv[j] = v;
        }
    }
    sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sturm::GkBisection;

    #[test]
    fn slices_tile_the_positive_spectrum() {
        let d = [5.0, -4.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.125];
        let e = [0.3, 0.2, -0.1, 0.4, 0.1, 0.2, 0.05];
        let sturm = GkSturm::new(&d, &e);
        let k = sturm.num_values();
        for vps in [1usize, 2, 3, 8, 100] {
            let slices = slice_spectrum(&sturm, vps);
            let total: usize = slices.iter().map(|s| s.num_values(k)).sum();
            assert_eq!(total, k, "vps = {vps}: slices must cover every value");
            assert!(slices.len() <= k.div_ceil(vps) + 1);
            for w in slices.windows(2) {
                assert!(w[0].hi <= w[1].lo + f64::EPSILON);
                assert!(w[0].count_hi <= w[1].count_lo);
            }
        }
    }

    #[test]
    fn sliced_values_match_the_bisection_oracle() {
        let d = [5.0, -4.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.125];
        let e = [0.3, 0.2, -0.1, 0.4, 0.1, 0.2, 0.05];
        let b = GkBisection::new(&d, &e);
        let oracle: Vec<f64> = (0..d.len()).map(|j| b.nth_largest(j)).collect();
        for vps in [1usize, 3, 8] {
            let sv = sliced_singular_values(&d, &e, vps, 1e-14);
            for (s, o) in sv.iter().zip(&oracle) {
                assert!((s - o).abs() <= 1e-13 * oracle[0], "{s} vs {o}");
            }
        }
    }

    #[test]
    fn clustered_spectrum_is_resolved() {
        // Ten-fold repeated diagonal entries: ranks never isolate, the
        // width criterion must still converge every bracket.
        let d = [2.0; 10];
        let e = [0.0; 9];
        let sv = sliced_singular_values(&d, &e, 4, 1e-14);
        for s in sv {
            assert!((s - 2.0).abs() < 1e-13);
        }
    }

    #[test]
    fn zero_matrix_and_empty() {
        assert!(sliced_singular_values(&[], &[], 8, 1e-14).is_empty());
        let sv = sliced_singular_values(&[0.0, 0.0, 0.0], &[0.0, 0.0], 2, 1e-14);
        assert_eq!(sv, vec![0.0, 0.0, 0.0]);
    }
}
