//! # bidiag-svd
//!
//! The singular-value solver subsystem of the reproduction: everything
//! that turns a proper bidiagonal matrix (diagonal `d`, superdiagonal `e`)
//! into its singular values — the BD2VAL stage the paper delegates to
//! LAPACK `xBDSQR`.  Three algorithms live behind one option struct:
//!
//! * [`SvdSolver::Dqds`] — the production fast path: Fernando–Parlett
//!   differential quotient-difference with shifts ([`dqds`], LAPACK
//!   `dlasq`-style), computing all `n` values in `O(n^2)` with high
//!   relative accuracy; falls back to bisection per segment if the qd
//!   iteration ever fails to converge.
//! * [`SvdSolver::SlicedBisection`] — the parallel path: Sturm-count
//!   spectrum slicing into disjoint multi-value brackets ([`mod@slice`]), one
//!   runtime task per *interval* rather than per value, each finished by a
//!   batched bracketed Newton front.
//! * [`SvdSolver::Bisection`] — the oracle/fallback: plain per-value
//!   bisection ([`sturm::GkBisection`]), maximally robust and the
//!   reference every other path is property-tested against.
//!
//! All three work on the Golub–Kahan tridiagonal (or its squared qd form)
//! rather than on `BᵀB`, so tiny singular values keep relative accuracy.
//! `bidiag-kernels` re-exports the crate as its `svd` module and
//! `bidiag-core` threads [`Bd2ValOptions`] through the GE2VAL pipeline and
//! the task runtime.
//!
//! Robustness: when the dqds iteration gives up on a segment it escalates
//! through a *fallback ladder* — spectrum slicing, then the bisection
//! oracle; non-finite segment data is surfaced as NaN output instead of a
//! panic or a hang (see [`dqds`]).  [`singular_values_with_report`]
//! returns a [`SolveReport`] describing which rungs fired.

#![warn(missing_docs)]

pub mod dqds;
pub mod slice;
pub mod sturm;

pub use dqds::{
    dqds_singular_values, dqds_singular_values_into, dqds_singular_values_with_stats, DqdsScratch,
    DqdsStats,
};
pub use slice::{slice_spectrum, sliced_singular_values, solve_slice, SpectrumSlice};
pub use sturm::{GkBisection, GkSturm};

/// Which algorithm computes the singular values of the bidiagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvdSolver {
    /// dqds with aggressive deflation — the serial fast path (default).
    Dqds,
    /// Sturm spectrum slicing + batched Newton — the parallel path.
    SlicedBisection,
    /// Per-value bisection — the oracle/fallback reference.
    Bisection,
}

/// Options of the BD2VAL stage: solver choice and accuracy/granularity
/// knobs, threaded through `bidiag-core`'s pipeline and runtime back-end.
#[derive(Clone, Copy, Debug)]
pub struct Bd2ValOptions {
    /// Algorithm selection.
    pub solver: SvdSolver,
    /// Relative-accuracy tolerance of the iterative (bisection/Newton)
    /// paths: brackets stop when their width falls below `rel_tol` times
    /// the value (floored at machine epsilon).  The dqds path always runs
    /// to full precision and ignores this knob.
    pub rel_tol: f64,
    /// Target number of singular values per runtime task (and per
    /// [`SpectrumSlice`]) on the sliced path.  Deliberately *not* derived
    /// from the thread count, so the slicing — and therefore every floating
    /// point operation — is identical at every thread count.
    pub values_per_task: usize,
}

impl Default for Bd2ValOptions {
    fn default() -> Self {
        Bd2ValOptions {
            solver: SvdSolver::Dqds,
            rel_tol: 1.0e-14,
            values_per_task: 32,
        }
    }
}

impl Bd2ValOptions {
    /// Builder-style: select the solver.
    pub fn with_solver(mut self, solver: SvdSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Builder-style: set the relative-accuracy tolerance.
    pub fn with_rel_tol(mut self, rel_tol: f64) -> Self {
        self.rel_tol = rel_tol;
        self
    }

    /// Builder-style: set the slicing granularity.
    pub fn with_values_per_task(mut self, values_per_task: usize) -> Self {
        self.values_per_task = values_per_task.max(1);
        self
    }
}

/// How a BD2VAL solve went: which fallback rungs fired and whether the
/// output can be trusted.  Returned by [`singular_values_with_report`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveReport {
    /// Iteration/fallback counters of the dqds driver (all zero for the
    /// non-dqds solvers, which have no ladder).
    pub dqds: DqdsStats,
    /// True when every returned singular value is finite.  False means the
    /// input (or a poisoned segment) contained NaN/Inf and the affected
    /// values were emitted as NaN — callers should reject the result.
    pub finite: bool,
}

/// Singular values of the bidiagonal matrix with main diagonal `d` and
/// superdiagonal `e` (`e.len() == d.len() - 1`), in non-increasing order,
/// computed by the solver selected in `opts`.
pub fn singular_values_with(d: &[f64], e: &[f64], opts: &Bd2ValOptions) -> Vec<f64> {
    match opts.solver {
        SvdSolver::Dqds => dqds_singular_values(d, e),
        SvdSolver::SlicedBisection => {
            sliced_singular_values(d, e, opts.values_per_task, opts.rel_tol)
        }
        SvdSolver::Bisection => bisection_singular_values(d, e),
    }
}

/// [`singular_values_with`] plus a [`SolveReport`]: same values bit for
/// bit, with the ladder counters and an output-finiteness verdict the
/// hardened session layer uses to turn poisoned solves into typed errors.
pub fn singular_values_with_report(
    d: &[f64],
    e: &[f64],
    opts: &Bd2ValOptions,
) -> (Vec<f64>, SolveReport) {
    let (sv, dqds) = match opts.solver {
        SvdSolver::Dqds => dqds_singular_values_with_stats(d, e),
        SvdSolver::SlicedBisection => (
            sliced_singular_values(d, e, opts.values_per_task, opts.rel_tol),
            DqdsStats::default(),
        ),
        SvdSolver::Bisection => (bisection_singular_values(d, e), DqdsStats::default()),
    };
    let finite = sv.iter().all(|v| v.is_finite());
    (sv, SolveReport { dqds, finite })
}

/// Singular values by the per-value bisection oracle, in non-increasing
/// order — the reference numerics every faster path is tested against.
pub fn bisection_singular_values(d: &[f64], e: &[f64]) -> Vec<f64> {
    let b = GkBisection::new(d, e);
    (0..b.num_values()).map(|j| b.nth_largest(j)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_solvers_agree_on_a_small_matrix() {
        let d = [4.0, -3.0, 2.5, 1.0, 0.5];
        let e = [0.7, -0.3, 0.2, 0.1];
        let oracle = bisection_singular_values(&d, &e);
        for solver in [SvdSolver::Dqds, SvdSolver::SlicedBisection] {
            let opts = Bd2ValOptions::default().with_solver(solver);
            let sv = singular_values_with(&d, &e, &opts);
            assert_eq!(sv.len(), oracle.len());
            for (s, o) in sv.iter().zip(&oracle) {
                assert!((s - o).abs() <= 1e-13 * oracle[0], "{solver:?}: {s} vs {o}");
            }
        }
    }

    #[test]
    fn default_options_are_the_documented_fast_path() {
        let opts = Bd2ValOptions::default();
        assert_eq!(opts.solver, SvdSolver::Dqds);
        assert!(opts.rel_tol <= 1e-13);
        assert!(opts.values_per_task >= 1);
    }
}
