//! Sturm-sequence machinery on the Golub–Kahan tridiagonal form, plus the
//! bisection oracle built on it.
//!
//! The singular values of a bidiagonal matrix `B` (diagonal `d`,
//! superdiagonal `e`) are the non-negative eigenvalues of the Golub–Kahan
//! tridiagonal
//!
//! ```text
//!        [ 0   d1              ]
//!        [ d1  0   e1          ]
//! T_GK = [     e1  0   d2      ]   (order 2k, zero diagonal)
//!        [         d2  0  ...  ]
//! ```
//!
//! whose spectrum is exactly `{ +sigma_i, -sigma_i }`.  Working on `T_GK`
//! avoids forming `BᵀB` and therefore resolves even tiny singular values to
//! high *relative* accuracy (Demmel–Kahan).  [`GkSturm`] is the shared
//! read-only state every solver in this crate leans on: it owns the
//! off-diagonals, the Gershgorin bound and the underflow-safe pivot
//! threshold, and evaluates Sturm counts — one shift at a time or batched
//! across a whole front of shifts in a single pass over the data.

/// Shared Sturm-evaluation state for one bidiagonal matrix: the Golub–Kahan
/// off-diagonals plus the derived bounds and pivot threshold.
///
/// Everything in this crate — the [`GkBisection`] oracle, the spectrum
/// slicer and the dqds fallback — evaluates counts through this one struct,
/// so all paths agree on the matrix they are looking at.
#[derive(Clone, Debug)]
pub struct GkSturm {
    /// Off-diagonals of the Golub–Kahan tridiagonal: `d1, e1, d2, ..., dk`
    /// (length `2k - 1`; empty when `k == 0`).
    off: Vec<f64>,
    /// Number of singular values `k`.
    k: usize,
    /// Gershgorin bound on `|lambda|` (zero diagonal, so the max row sum).
    bound: f64,
    /// Minimum pivot magnitude, LAPACK `xLAEBZ`/`xSTEBZ`-style.
    pivmin: f64,
}

impl GkSturm {
    /// Prepare the Sturm state for the bidiagonal matrix with main diagonal
    /// `d` and superdiagonal `e` (`e.len() == d.len() - 1`, or both empty).
    pub fn new(d: &[f64], e: &[f64]) -> Self {
        let k = d.len();
        if k == 0 {
            return GkSturm {
                off: Vec::new(),
                k: 0,
                bound: 0.0,
                pivmin: f64::MIN_POSITIVE,
            };
        }
        assert_eq!(e.len(), k - 1, "superdiagonal must have length n-1");

        // Interleave into the GK off-diagonal sequence d1, e1, d2, ..., dk.
        let mut off = Vec::with_capacity(2 * k - 1);
        for i in 0..k {
            off.push(d[i]);
            if i + 1 < k {
                off.push(e[i]);
            }
        }

        // Gershgorin bound: the diagonal is zero, so |lambda| <= max row sum.
        let m = 2 * k;
        let mut bound: f64 = 0.0;
        for i in 0..m {
            let left = if i > 0 { off[i - 1].abs() } else { 0.0 };
            let right = if i < m - 1 { off[i].abs() } else { 0.0 };
            bound = bound.max(left + right);
        }

        // Pivot threshold, derived LAPACK `xSTEBZ`-style from safe-minimum
        // scaling: `pivmin = safmin * max(1, max_i b_i^2)`.  The Sturm
        // recurrence divides by the previous pivot; clamping pivots at this
        // magnitude guarantees `b_i^2 / pivot` cannot overflow, while the
        // clamp itself only ever fires for pivots below `safmin * b_max^2` —
        // a perturbation at the underflow scale of the recurrence, far below
        // one ulp of any representable eigenvalue of the matrix.  That is
        // the property underwriting the relative-accuracy claim of GK
        // bisection: counts are *exact* for every shift whose pivots stay
        // representable, so each bracket converges to the true sigma with
        // relative error governed only by the stopping width, never by the
        // pivot guard.  (The previous ad-hoc `eps * bound^2 * 1e-3` value
        // was ~1e150 times larger on well-scaled data and tied the guard to
        // the matrix *norm* rather than to underflow.)
        let bmax2 = off.iter().fold(0.0_f64, |acc, &b| acc.max(b * b));
        let pivmin = f64::MIN_POSITIVE * bmax2.max(1.0);

        GkSturm {
            off,
            k,
            bound,
            pivmin,
        }
    }

    /// Number of singular values (the order of the bidiagonal matrix).
    pub fn num_values(&self) -> usize {
        self.k
    }

    /// Gershgorin bound on the spectrum radius of the GK tridiagonal.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The pivot clamp threshold (see [`GkSturm::new`]).
    pub fn pivmin(&self) -> f64 {
        self.pivmin
    }

    /// Absolute floor below which an eigenvalue bracket is declared zero:
    /// values this far below the spectrum radius are indistinguishable from
    /// an exact zero singular value at any useful relative accuracy.
    pub fn zero_floor(&self) -> f64 {
        self.bound * 1.0e-20
    }

    /// The clamped LDLᵀ pivot, LAPACK `xSTEBZ` convention: pivots are
    /// clamped *before* the sign test, so an exact-zero pivot (e.g. the
    /// first pivot at shift 0 on this zero-diagonal matrix) counts as
    /// negative.  Every count evaluator below must go through this one
    /// function — the oracle and the sliced path only agree on rank
    /// boundaries because they share the clamp convention bit for bit.
    #[inline]
    fn clamped(&self, v: f64) -> f64 {
        if v.abs() < self.pivmin {
            -self.pivmin
        } else {
            v
        }
    }

    /// Number of eigenvalues of the GK tridiagonal strictly smaller than
    /// `x` (non-pivoting LDLᵀ sign count).
    pub fn count(&self, x: f64) -> usize {
        if self.k == 0 {
            return 0;
        }
        let m = 2 * self.k;
        let mut count = 0usize;
        let mut d = self.clamped(-x);
        if d < 0.0 {
            count += 1;
        }
        for i in 1..m {
            let b = self.off[i - 1];
            d = self.clamped(-x - b * b / d);
            if d < 0.0 {
                count += 1;
            }
        }
        count
    }

    /// Batched multi-shift Sturm counts: one pass over the off-diagonal
    /// data evaluating every shift in `xs` simultaneously.
    ///
    /// The recurrence per shift is bit-identical to [`GkSturm::count`]; the
    /// batching buys data reuse — the off-diagonals are streamed once for
    /// the whole front instead of once per shift, which is what makes wide
    /// bisection/slicing fronts cheap on long tridiagonals.
    pub fn count_multi(&self, xs: &[f64], counts: &mut [usize]) {
        assert_eq!(xs.len(), counts.len());
        if self.k == 0 || xs.is_empty() {
            counts.iter_mut().for_each(|c| *c = 0);
            return;
        }
        let m = 2 * self.k;
        let mut d: Vec<f64> = xs.iter().map(|&x| self.clamped(-x)).collect();
        for (j, c) in counts.iter_mut().enumerate() {
            *c = usize::from(d[j] < 0.0);
        }
        for i in 1..m {
            let b2 = self.off[i - 1] * self.off[i - 1];
            for j in 0..xs.len() {
                let nd = self.clamped(-xs[j] - b2 / d[j]);
                d[j] = nd;
                counts[j] += usize::from(nd < 0.0);
            }
        }
    }

    /// Batched count **and** Newton information at every shift in `xs`.
    ///
    /// Alongside the Sturm count, evaluates `omega(x) = f'(x)/f(x) =
    /// sum_i d_i'(x)/d_i(x)` where `f` is the characteristic polynomial and
    /// the `d_i` are the LDLᵀ pivots (so no determinant is ever formed and
    /// nothing overflows).  A Newton step towards the eigenvalue is then
    /// `x - 1/omega(x)`; the caller safeguards it inside its bracket.  The
    /// pivot derivative follows the companion recurrence
    /// `d_i' = -1 + (b^2/d_{i-1}^2) * d_{i-1}'`.
    pub fn count_and_newton_multi(&self, xs: &[f64], counts: &mut [usize], omega: &mut [f64]) {
        assert_eq!(xs.len(), counts.len());
        assert_eq!(xs.len(), omega.len());
        if self.k == 0 || xs.is_empty() {
            counts.iter_mut().for_each(|c| *c = 0);
            omega.iter_mut().for_each(|w| *w = 0.0);
            return;
        }
        let m = 2 * self.k;
        let mut d: Vec<f64> = xs.iter().map(|&x| self.clamped(-x)).collect();
        let mut del: Vec<f64> = vec![-1.0; xs.len()];
        for j in 0..xs.len() {
            counts[j] = usize::from(d[j] < 0.0);
            omega[j] = del[j] / d[j];
        }
        for i in 1..m {
            let b2 = self.off[i - 1] * self.off[i - 1];
            for j in 0..xs.len() {
                let dd = d[j];
                let r = b2 / dd;
                let nd = self.clamped(-xs[j] - r);
                let ndel = -1.0 + (r / dd) * del[j];
                d[j] = nd;
                del[j] = ndel;
                counts[j] += usize::from(nd < 0.0);
                omega[j] += ndel / nd;
            }
        }
    }
}

/// Prepared bisection state for the singular values of one bidiagonal
/// matrix: the [`GkSturm`] counts plus bracket bookkeeping.
///
/// This is the *oracle and fallback* of the subsystem: plain safeguarded
/// bisection, one singular value per call, each value an independent
/// bracket over shared read-only state — slow but maximally robust, and
/// running the same arithmetic no matter how calls are distributed over
/// threads.  The production solvers ([`dqds`](crate::dqds) and the
/// [sliced](crate::slice) path) are property-tested against it.
#[derive(Clone, Debug)]
pub struct GkBisection {
    sturm: GkSturm,
}

impl GkBisection {
    /// Prepare the bisection state for the bidiagonal matrix with main
    /// diagonal `d` and superdiagonal `e` (`e.len() == d.len() - 1`).
    pub fn new(d: &[f64], e: &[f64]) -> Self {
        GkBisection {
            sturm: GkSturm::new(d, e),
        }
    }

    /// Wrap an already-built [`GkSturm`] state.
    pub fn from_sturm(sturm: GkSturm) -> Self {
        GkBisection { sturm }
    }

    /// The underlying Sturm state.
    pub fn sturm(&self) -> &GkSturm {
        &self.sturm
    }

    /// Number of singular values (the order of the bidiagonal matrix).
    pub fn num_values(&self) -> usize {
        self.sturm.num_values()
    }

    /// The `j`-th largest singular value, `j` in `0..num_values()`.
    ///
    /// The (0-based) `j`-th largest singular value is the `(2k - j)`-th
    /// smallest eigenvalue of the Golub–Kahan tridiagonal (1-based):
    /// bisection maintains `count(lo) <= target < count(hi)` for
    /// `target = 2k - j - 1`, and iterates until the bracket is relatively
    /// converged (`hi - lo <= eps * (lo + hi)`) or provably zero
    /// (`hi` below [`GkSturm::zero_floor`]).
    pub fn nth_largest(&self, j: usize) -> f64 {
        let k = self.sturm.num_values();
        assert!(j < k, "value index out of range");
        let bound = self.sturm.bound();
        if bound == 0.0 {
            return 0.0;
        }
        let target = 2 * k - j - 1;
        let floor = self.sturm.zero_floor();
        let mut lo = 0.0_f64;
        let mut hi = bound * (1.0 + 4.0 * f64::EPSILON);
        // Bracket halving: ~52 + log2(sigma_max / sigma) iterations to
        // relative convergence, or ~66 to the zero floor; 256 is a safety
        // net that no representable bracket can exhaust.
        for _ in 0..256 {
            if hi - lo <= f64::EPSILON * (lo + hi) || hi <= floor {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if self.sturm.count(mid) > target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_monotone_and_complete() {
        let s = GkSturm::new(&[3.0, -1.0, 2.0, 0.5], &[0.4, -0.2, 0.1]);
        let k = s.num_values();
        assert_eq!(s.count(-s.bound() * 1.01), 0);
        assert_eq!(s.count(s.bound() * 1.01), 2 * k);
        assert_eq!(s.count(0.0), k); // no zero singular values here
        let mut prev = 0;
        let mut x = -s.bound();
        while x <= s.bound() {
            let c = s.count(x);
            assert!(c >= prev, "count must be non-decreasing");
            prev = c;
            x += s.bound() / 7.3;
        }
    }

    #[test]
    fn batched_counts_match_single_shift_counts() {
        let s = GkSturm::new(&[1.0, 2.0, 3.0, 4.0, 5.0], &[0.5, 0.5, 0.5, 0.5]);
        let xs: Vec<f64> = (0..17).map(|i| -1.0 + 0.45 * i as f64).collect();
        let mut counts = vec![0usize; xs.len()];
        s.count_multi(&xs, &mut counts);
        for (x, c) in xs.iter().zip(&counts) {
            assert_eq!(s.count(*x), *c, "x = {x}");
        }
        let mut counts2 = vec![0usize; xs.len()];
        let mut omega = vec![0.0f64; xs.len()];
        s.count_and_newton_multi(&xs, &mut counts2, &mut omega);
        assert_eq!(counts, counts2);
    }

    #[test]
    fn newton_step_converges_to_isolated_eigenvalue() {
        // Diagonal bidiagonal: singular values are just |d|, eigenvalues of
        // the GK form are {±3, ±2, ±1}. Newton started well inside the
        // basin of 3 must home in on it quadratically (from farther out an
        // unguarded step can escape towards another root — which is why
        // the slice solver brackets every step).
        let s = GkSturm::new(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        let mut x = 2.9_f64;
        for _ in 0..8 {
            let mut c = [0usize];
            let mut w = [0.0f64];
            s.count_and_newton_multi(&[x], &mut c, &mut w);
            let step = 1.0 / w[0];
            x -= step;
        }
        assert!((x - 3.0).abs() < 1e-12, "newton ended at {x}");
    }

    #[test]
    fn pivmin_is_underflow_scaled_not_norm_scaled() {
        let s = GkSturm::new(&[1.0, 1.0e-8, 1.0], &[0.0, 0.0]);
        // dlaebz-style: safmin * max(1, b_max^2) — for O(1) data this is
        // safmin itself, not eps * bound^2 * 1e-3 (~1e-19) as before.
        assert!(s.pivmin() <= 2.0 * f64::MIN_POSITIVE);
        let b = GkBisection::from_sturm(s);
        // ... and tiny singular values are still resolved relatively.
        let tiny = b.nth_largest(2);
        assert!((tiny - 1.0e-8).abs() < 1e-22, "tiny = {tiny}");
    }

    #[test]
    fn empty_and_zero_matrices() {
        let s = GkSturm::new(&[], &[]);
        assert_eq!(s.num_values(), 0);
        assert_eq!(s.count(0.5), 0);
        let b = GkBisection::new(&[0.0, 0.0], &[0.0]);
        assert_eq!(b.nth_largest(0), 0.0);
        assert_eq!(b.nth_largest(1), 0.0);
    }
}
