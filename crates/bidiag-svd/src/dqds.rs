//! The dqds fast path: Fernando–Parlett differential quotient-difference
//! with shifts (the algorithm behind LAPACK `dlasq`).
//!
//! Works on the *squared* bidiagonal in qd form — `q_i = d_i^2`,
//! `e_i = e_i^2` — where one dqds pass
//!
//! ```text
//! d_1 = q_1 - s
//! for i = 1 .. m-1:   qhat_i = d_i + e_i
//!                     ehat_i = e_i * (q_{i+1} / qhat_i)
//!                     d_{i+1} = d_i * (q_{i+1} / qhat_i) - s
//! qhat_m = d_m
//! ```
//!
//! is one shifted Cholesky LR step on `B^T B` performed entirely in
//! factored quantities: every intermediate stays non-negative whenever the
//! shift `s` is below the smallest eigenvalue, which is both the
//! high-relative-accuracy argument (no subtractive cancellation on the
//! data, only on the shift accumulator) and the shift-rejection test — a
//! negative `d` proves the shift overshot and the pass is discarded.
//!
//! The driver adds the standard production machinery: splitting at
//! negligible `e`, flipping graded segments so deflation happens at the
//! cheap end, ping-pong buffers so a rejected pass costs nothing,
//! aggressive bottom deflation, Gershgorin-capped shifts, closed-form
//! `1x1`/`2x2` finishes, and a safeguarded *fallback ladder* for any
//! segment that refuses to converge — robustness never depends on the qd
//! iteration.
//!
//! The ladder (`ladder_fallback`) escalates per segment:
//!
//! 1. **Non-finite data** (a NaN/Inf that crept into the qd arrays, e.g.
//!    via fault injection) cannot be solved by any rung: the segment's
//!    values are emitted as NaN and counted in
//!    [`DqdsStats::poisoned_values`], so callers detect the poisoning at
//!    the output instead of hanging or panicking inside an iteration.
//! 2. **Spectrum slicing** ([`crate::slice::sliced_singular_values`]):
//!    batched Sturm bisection/Newton, much cheaper than per-value
//!    bisection; its output is validated (length and finiteness) before
//!    being trusted.  Counted in [`DqdsStats::sliced_values`].
//! 3. **Per-value bisection oracle** ([`GkBisection`]): maximally robust,
//!    always correct.  Counted in [`DqdsStats::fallback_values`].
//!
//! The failpoints `svd::segment` (PoisonNan corrupts the segment's leading
//! `q`, Trigger forces the ladder without a real convergence failure) and
//! `svd::sliced-rung` (Trigger skips rung 2) let the robustness suite
//! exercise every rung deterministically.
//!
//! Computing all `n` values costs `O(n)` passes of `O(m)` work each —
//! `O(n^2)` total with a small constant, versus the `O(n^2 log(1/eps))`
//! of per-value bisection with its ~50 full Sturm passes per value.

use crate::slice::sliced_singular_values;
use crate::sturm::GkBisection;
use bidiag_matrix::simd;
use bidiag_obs as obs;

/// Aggressive-deflation threshold: `tol2 = (100 eps)^2`, the square of
/// LAPACK `dlasq`'s `TOL`, because we deflate in the squared (qd) world —
/// a deflation perturbs a squared eigenvalue by at most `tol2` relative,
/// i.e. half that on the singular value itself.
const TOL2: f64 = (100.0 * f64::EPSILON) * (100.0 * f64::EPSILON);

/// Flip bias (LAPACK `dlasq2`'s `CBIAS`): a segment is reversed when its
/// bottom corner is this much larger than its top, so the smallest
/// eigenvalues emerge at the deflation end.
const CBIAS: f64 = 1.5;

/// Per-shift safety factor: the next shift is this fraction of the `dmin`
/// estimate from the previous pass (rejection handles the overshoots the
/// factor does not).
const SHIFT_SAFETY: f64 = 0.98;

/// Counters describing how a [`dqds_singular_values_with_stats`] run went.
#[derive(Clone, Copy, Debug, Default)]
pub struct DqdsStats {
    /// Total dqds passes executed (including rejected shift attempts).
    pub passes: usize,
    /// Number of unreduced segments processed, counting sub-segments the
    /// driver split off at deflation-induced zeros.
    pub segments: usize,
    /// Number of singular values that were computed by the per-value
    /// bisection oracle (the last rung of the fallback ladder).
    pub fallback_values: usize,
    /// Number of singular values that were computed by the spectrum-slicing
    /// rung of the fallback ladder (cheaper than the oracle; tried first
    /// when qd iteration gives up on a segment with finite data).
    pub sliced_values: usize,
    /// Number of singular values emitted as NaN because their segment's qd
    /// data was non-finite (poisoned input or injected fault) — the ladder
    /// refuses to iterate on NaN/Inf and surfaces the damage at the output.
    pub poisoned_values: usize,
    /// Number of segment flips performed.
    pub flips: usize,
}

/// One independent unreduced segment of the squared problem, in qd form.
struct Segment {
    q: Vec<f64>,
    e: Vec<f64>,
    /// Accumulated shift: eigenvalues of the original segment are
    /// `(eigenvalues of the current qd array) + sigma`.
    sigma: f64,
}

/// Reusable scratch of the dqds driver: a pool of recycled `(q, e)` buffer
/// pairs (the qd arrays, the ping-pong buffers and any split-off
/// sub-segments all draw from and return to it), the segment stack, and
/// the eigenvalue accumulator.
///
/// After a warm-up call, [`dqds_singular_values_into`] with the same (or a
/// smaller) problem size performs **zero heap allocations** outside the
/// rare bisection-fallback path — buffer capacities grow to the
/// high-water mark and stay there.  One scratch per long-lived worker is
/// the intended usage (the batched SVD session owns one per worker).
#[derive(Debug, Default)]
pub struct DqdsScratch {
    /// Recycled buffer pairs; `take_pair` pops (or creates) a cleared pair,
    /// and every retired segment / ping-pong pair is pushed back.
    free: Vec<(Vec<f64>, Vec<f64>)>,
    stack: Vec<Segment>,
    lambdas: Vec<f64>,
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("len", &self.q.len())
            .field("sigma", &self.sigma)
            .finish()
    }
}

impl DqdsScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for bidiagonals of order up to `n`, so even the
    /// first solve is allocation-free: three buffer pairs (live arrays,
    /// ping-pong, one split) of capacity `n` each.
    pub fn for_len(n: usize) -> Self {
        DqdsScratch {
            free: (0..3)
                .map(|_| (Vec::with_capacity(n), Vec::with_capacity(n)))
                .collect(),
            stack: Vec::with_capacity(4),
            lambdas: Vec::with_capacity(n),
        }
    }
}

/// Pop a recycled buffer pair (or create an empty one), cleared and ready
/// to be filled.
fn take_pair(free: &mut Vec<(Vec<f64>, Vec<f64>)>) -> (Vec<f64>, Vec<f64>) {
    let (mut q, mut e) = free.pop().unwrap_or_default();
    q.clear();
    e.clear();
    (q, e)
}

/// Singular values of the bidiagonal matrix with main diagonal `d` and
/// superdiagonal `e`, in non-increasing order, via dqds.
///
/// See [`dqds_singular_values_with_stats`] for the variant that also
/// reports iteration/fallback counters and [`dqds_singular_values_into`]
/// for the allocation-free variant with caller-owned scratch.
pub fn dqds_singular_values(d: &[f64], e: &[f64]) -> Vec<f64> {
    dqds_singular_values_with_stats(d, e).0
}

/// [`dqds_singular_values`] plus the [`DqdsStats`] counters (used by the
/// benches and the property tests to confirm the fast path actually ran).
pub fn dqds_singular_values_with_stats(d: &[f64], e: &[f64]) -> (Vec<f64>, DqdsStats) {
    let mut scratch = DqdsScratch::new();
    let mut out = Vec::with_capacity(d.len());
    let stats = dqds_singular_values_into(d, e, &mut scratch, &mut out);
    (out, stats)
}

/// [`dqds_singular_values`] writing into caller-owned scratch and output
/// buffers: `out` is cleared and refilled with the singular values in
/// non-increasing order.
///
/// The arithmetic is identical to the allocating entry points — the
/// recycled buffers receive exactly the values the fresh allocations
/// would — so the results are **bitwise equal**; in steady state (same
/// problem size, warm scratch) the call performs no heap allocation unless
/// a segment falls back to bisection (see [`DqdsScratch`]).
pub fn dqds_singular_values_into(
    d: &[f64],
    e: &[f64],
    scratch: &mut DqdsScratch,
    out: &mut Vec<f64>,
) -> DqdsStats {
    let n = d.len();
    let mut stats = DqdsStats::default();
    out.clear();
    if n == 0 {
        return stats;
    }
    assert_eq!(e.len(), n - 1, "superdiagonal must have length n-1");

    // Scale by a power of two so the largest entry is in (0.5, 1]: exact
    // (no rounding) and keeps all squares far from overflow/underflow.
    let amax = d
        .iter()
        .chain(e.iter())
        .fold(0.0_f64, |acc, &v| acc.max(v.abs()));
    if amax == 0.0 {
        out.resize(n, 0.0);
        return stats;
    }
    let scale = (-amax.log2().ceil()) as i32;
    let s2 = 2.0_f64.powi(scale);
    let unscale = 2.0_f64.powi(-scale);

    let DqdsScratch {
        free,
        stack,
        lambdas,
    } = scratch;
    debug_assert!(stack.is_empty());
    lambdas.clear();

    // The squared, scaled qd arrays. Squaring underflows only for entries
    // below ~1e-154 * amax, and an underflowed e^2 == 0 simply becomes a
    // split point (a relative perturbation far below eps on any sigma).
    let (mut q0, mut e0) = take_pair(free);
    q0.extend(d.iter().map(|&v| (v * s2) * (v * s2)));
    e0.extend(e.iter().map(|&v| (v * s2) * (v * s2)));

    // Split into unreduced segments at exact zeros of e^2.
    let mut start = 0usize;
    for i in 0..n {
        if i + 1 == n || e0[i] == 0.0 {
            let (mut qs, mut es) = take_pair(free);
            qs.extend_from_slice(&q0[start..=i]);
            es.extend_from_slice(&e0[start..i]);
            stack.push(Segment {
                q: qs,
                e: es,
                sigma: 0.0,
            });
            start = i + 1;
        }
    }
    free.push((q0, e0));

    // Shared pass budget: dqds needs a handful of passes per eigenvalue;
    // anything beyond this bound is pathological and goes to bisection.
    let mut budget = 30 * n + 100;
    while let Some(seg) = stack.pop() {
        stats.segments += 1;
        solve_segment(seg, stack, free, lambdas, &mut budget, &mut stats);
    }
    debug_assert_eq!(lambdas.len(), n);

    // NaN lambdas (poisoned segments) must survive to the output —
    // `f64::max(NaN, 0.0)` would silently launder them into zeros.
    out.extend(lambdas.iter().map(|&l| {
        if l.is_nan() {
            f64::NAN
        } else {
            l.max(0.0).sqrt() * unscale
        }
    }));
    // In-place unstable sort: elements comparing equal here are bitwise
    // identical (all outputs are non-negative with +0.0 zeros), so the
    // result is byte-for-byte the same as a stable sort — without the
    // stable sort's temporary allocation.  `total_cmp` orders exactly like
    // `partial_cmp` on these values and stays a total order (no panic)
    // when poisoned NaNs pass through.
    out.sort_unstable_by(|a, b| b.total_cmp(a));
    if obs::enabled() {
        // Aggregate the per-solve ladder counters into the process-wide
        // registry; the caller still gets the exact per-solve stats.
        let reg = obs::registry();
        reg.dqds_passes.add(stats.passes as u64);
        reg.dqds_segments.add(stats.segments as u64);
        reg.dqds_fallback_values.add(stats.fallback_values as u64);
        reg.dqds_sliced_values.add(stats.sliced_values as u64);
        reg.dqds_poisoned_values.add(stats.poisoned_values as u64);
        reg.dqds_flips.add(stats.flips as u64);
    }
    stats
}

/// Iterate one segment to completion, pushing eigenvalues (of the squared
/// problem, original scaling minus nothing — `lambda = qd eigenvalue +
/// sigma`) into `lambdas` and any split-off sub-segments onto `stack`.
/// The segment's buffers (and the ping-pong pair drawn from `free`) are
/// returned to `free` when the segment retires, so steady-state solves
/// recycle instead of allocating.
fn solve_segment(
    seg: Segment,
    stack: &mut Vec<Segment>,
    free: &mut Vec<(Vec<f64>, Vec<f64>)>,
    lambdas: &mut Vec<f64>,
    budget: &mut usize,
    stats: &mut DqdsStats,
) {
    let Segment { q, e, sigma } = seg;
    let m = q.len();

    // Ping-pong buffers: `cur` holds the live arrays, `alt` receives the
    // next pass; a rejected shift simply never swaps, so retrying with a
    // smaller shift re-reads intact data.
    let mut cur = (q, e);
    let mut alt = take_pair(free);
    alt.0.resize(m, 0.0);
    alt.1.resize(m.saturating_sub(1), 0.0);
    let mut force_ladder = false;
    match failpoint::fire("svd::segment") {
        Some(failpoint::FailAction::PoisonNan) => {
            if let Some(q0) = cur.0.first_mut() {
                *q0 = f64::NAN;
            }
        }
        Some(failpoint::FailAction::Trigger) => force_ladder = true,
        _ => {}
    }
    if m > 0 {
        if force_ladder {
            ladder_fallback(&cur.0[..m], &cur.1[..m - 1], sigma, lambdas, stats);
        } else {
            iterate_segment(
                &mut cur, &mut alt, sigma, stack, free, lambdas, budget, stats,
            );
        }
    }
    free.push(cur);
    free.push(alt);
}

/// The iteration loop of [`solve_segment`], separated so every exit path
/// funnels through one place that recycles the ping-pong buffers.
#[allow(clippy::too_many_arguments)]
fn iterate_segment(
    cur: &mut (Vec<f64>, Vec<f64>),
    alt: &mut (Vec<f64>, Vec<f64>),
    sigma: f64,
    stack: &mut Vec<Segment>,
    free: &mut Vec<(Vec<f64>, Vec<f64>)>,
    lambdas: &mut Vec<f64>,
    budget: &mut usize,
    stats: &mut DqdsStats,
) {
    let mut m = cur.0.len();
    let mut sigma = sigma;
    let mut dmin_est = f64::INFINITY; // no estimate before the first pass
    let mut shift = 0.0_f64; // first pass is a pure (safe) dqd

    loop {
        let (q, e) = (&mut cur.0, &mut cur.1);

        // --- deflation at the bottom + tiny closed forms -----------------
        loop {
            match m {
                0 => return,
                1 => {
                    lambdas.push(q[0] + sigma);
                    return;
                }
                2 => {
                    let (big, small) = two_by_two(q[0], q[1], e[0]);
                    lambdas.push(big + sigma);
                    lambdas.push(small + sigma);
                    return;
                }
                _ => {}
            }
            if e[m - 2] <= TOL2 * (sigma + q[m - 1]) {
                lambdas.push(q[m - 1] + sigma);
                m -= 1;
            } else {
                break;
            }
        }

        // --- split at interior zeros (can appear as the iteration drives
        //     individual e's to underflow) ---------------------------------
        if let Some(i) = (0..m - 1).find(|&i| e[i] == 0.0) {
            let (mut q1, mut e1) = take_pair(free);
            q1.extend_from_slice(&q[..=i]);
            e1.extend_from_slice(&e[..i]);
            stack.push(Segment {
                q: q1,
                e: e1,
                sigma,
            });
            let (mut q2, mut e2) = take_pair(free);
            q2.extend_from_slice(&q[i + 1..m]);
            e2.extend_from_slice(&e[i + 1..m - 1]);
            stack.push(Segment {
                q: q2,
                e: e2,
                sigma,
            });
            return;
        }

        // --- budget exhausted: hand the segment to the ladder ------------
        if *budget == 0 {
            ladder_fallback(&q[..m], &e[..m - 1], sigma, lambdas, stats);
            return;
        }

        // --- flip so the (expected) small end sits at the bottom ---------
        if CBIAS * q[0] < q[m - 1] {
            q[..m].reverse();
            e[..m - 1].reverse();
            stats.flips += 1;
        }

        // --- Gershgorin-safe shift: lambda_min is at most the smallest
        //     diagonal of the associated tridiagonal B^T B, whose qd
        //     coordinates are q_i + e_{i-1} ---------------------------------
        let mut gersh = q[0];
        for i in 1..m {
            gersh = gersh.min(q[i] + e[i - 1]);
        }
        if dmin_est.is_finite() {
            shift = (SHIFT_SAFETY * dmin_est).clamp(0.0, 0.99 * gersh);
        }

        // --- one dqds pass, with shift rejection --------------------------
        loop {
            *budget = budget.saturating_sub(1);
            stats.passes += 1;
            let dmin = dqds_pass(&cur.0[..m], &cur.1[..m - 1], shift, &mut alt.0, &mut alt.1);
            if dmin >= 0.0 && dmin.is_finite() {
                sigma += shift;
                dmin_est = dmin;
                std::mem::swap(cur, alt);
                break;
            }
            if shift == 0.0 {
                // A zero-shift dqd pass can only fail through over/underflow
                // pathologies (or non-finite data); the ladder takes over.
                ladder_fallback(&cur.0[..m], &cur.1[..m - 1], sigma, lambdas, stats);
                return;
            }
            // Shift overshot the smallest eigenvalue: retry smaller, then
            // give up and take the always-safe unshifted pass.
            shift = if shift > 1e-3 * gersh {
                shift * 0.25
            } else {
                0.0
            };
            if *budget == 0 {
                ladder_fallback(&cur.0[..m], &cur.1[..m - 1], sigma, lambdas, stats);
                return;
            }
        }
    }
}

/// One dqds transform: reads `(q, e)`, writes `(qh, eh)` (only the first
/// `m` / `m-1` entries), returns the running minimum of the `d` values —
/// non-negative iff the shift was admissible.
///
/// Dispatches on [`bidiag_matrix::simd::backend`] like the other hot
/// loops, but the recurrence is a serial `d`-chain (each `d_{i+1}` needs
/// the division from step `i`), so the AVX2 shell only recompiles the
/// same body under `target_feature` — no reassociation, no fusion.  Both
/// backends therefore produce **bitwise-identical** output; the dispatch
/// exists so the forced-backend equivalence suite covers this kernel and
/// so a future vectorized variant (e.g. a speculative two-pass scheme)
/// has its slot ready.
fn dqds_pass(q: &[f64], e: &[f64], s: f64, qh: &mut [f64], eh: &mut [f64]) -> f64 {
    match simd::backend() {
        #[cfg(target_arch = "x86_64")]
        simd::SimdBackend::Avx2 => {
            simd::check_avx2();
            // SAFETY: `check_avx2` above verified AVX2+FMA are available
            // on this CPU, which is the only precondition of the shell.
            unsafe { dqds_pass_avx2(q, e, s, qh, eh) }
        }
        _ => dqds_pass_body(q, e, s, qh, eh),
    }
}

/// The dqds recurrence itself, shared verbatim by both backends.
#[inline(always)]
fn dqds_pass_body(q: &[f64], e: &[f64], s: f64, qh: &mut [f64], eh: &mut [f64]) -> f64 {
    let m = q.len();
    let mut d = q[0] - s;
    let mut dmin = d;
    for i in 0..m - 1 {
        qh[i] = d + e[i];
        let t = q[i + 1] / qh[i];
        eh[i] = e[i] * t;
        d = d * t - s;
        if d < dmin {
            dmin = d;
        }
    }
    qh[m - 1] = d;
    if !d.is_finite() {
        return f64::NAN;
    }
    dmin
}

/// [`dqds_pass_body`] compiled with AVX2+FMA enabled (VEX encodings,
/// vector min for the `dmin` reduction where LLVM finds one legal).
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dqds_pass_avx2(q: &[f64], e: &[f64], s: f64, qh: &mut [f64], eh: &mut [f64]) -> f64 {
    dqds_pass_body(q, e, s, qh, eh)
}

/// Eigenvalues of the order-2 qd segment `(q0, q1, e0)` — i.e. of the
/// 2x2 symmetric tridiagonal `[[q0, c], [c, q1 + e0]]` with `c^2 = q0 e0`
/// — via the stable trace/determinant formulas: the discriminant is the
/// cancellation-free sum `(q0 - q1 + e0)^2 + 4 q1 e0` and the small root
/// comes from `det / lambda_max`, so both roots keep relative accuracy.
fn two_by_two(q0: f64, q1: f64, e0: f64) -> (f64, f64) {
    let tr = q0 + q1 + e0;
    let disc = {
        let u = q0 - q1 + e0;
        (u * u + 4.0 * q1 * e0).max(0.0)
    };
    let big = 0.5 * (tr + disc.sqrt());
    let small = if big > 0.0 { (q0 * q1) / big } else { 0.0 };
    (big, small)
}

/// Slicing granularity of the ladder's spectrum-slicing rung (the
/// default `Bd2ValOptions::values_per_task`).
const LADDER_VALUES_PER_SLICE: usize = 32;

/// Bracket tolerance of the spectrum-slicing rung (the default
/// `Bd2ValOptions::rel_tol`).
const LADDER_REL_TOL: f64 = 1.0e-14;

/// Robust finish for a segment the qd iteration could not close out — the
/// escalation ladder of the module docs.  Works on the segment's
/// bidiagonal (`sqrt` of the qd arrays — the signs are irrelevant to
/// singular values), re-squared and shifted back into the caller's
/// eigenvalue coordinates:
///
/// 1. non-finite qd data → one NaN per value (`poisoned_values`);
/// 2. spectrum slicing, output validated (`sliced_values`);
/// 3. per-value bisection oracle (`fallback_values`).
fn ladder_fallback(
    q: &[f64],
    e: &[f64],
    sigma: f64,
    lambdas: &mut Vec<f64>,
    stats: &mut DqdsStats,
) {
    let m = q.len();
    if q.iter().chain(e.iter()).any(|v| !v.is_finite()) {
        // No rung can solve a poisoned segment; refuse to iterate on
        // NaN/Inf and make the damage visible at the output instead.
        lambdas.extend(std::iter::repeat_n(f64::NAN, m));
        stats.poisoned_values += m;
        return;
    }
    let d: Vec<f64> = q.iter().map(|&v| v.max(0.0).sqrt()).collect();
    let ee: Vec<f64> = e.iter().map(|&v| v.max(0.0).sqrt()).collect();

    let skip_sliced = matches!(
        failpoint::fire("svd::sliced-rung"),
        Some(failpoint::FailAction::Trigger)
    );
    if !skip_sliced {
        let sliced = sliced_singular_values(&d, &ee, LADDER_VALUES_PER_SLICE, LADDER_REL_TOL);
        // Trust the rung only after validation: exactly one value per
        // input row and every value finite.
        if sliced.len() == m && sliced.iter().all(|v| v.is_finite()) {
            lambdas.extend(sliced.iter().map(|&s| s * s + sigma));
            stats.sliced_values += m;
            return;
        }
    }

    let b = GkBisection::new(&d, &ee);
    for j in 0..b.num_values() {
        let s = b.nth_largest(j);
        lambdas.push(s * s + sigma);
    }
    stats.fallback_values += m;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        let scale = a.first().copied().unwrap_or(1.0).max(f64::MIN_POSITIVE);
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol * scale, "{x} vs {y} (scale {scale})");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let (sv, stats) = dqds_singular_values_with_stats(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        assert_close(&sv, &[3.0, 2.0, 1.0], 1e-15);
        assert_eq!(stats.fallback_values, 0);
    }

    #[test]
    fn two_by_two_golden_ratio() {
        // B = [[1, 1], [0, 1]]: sigma = sqrt((3 ± sqrt(5)) / 2).
        let sv = dqds_singular_values(&[1.0, 1.0], &[1.0]);
        let expect = [
            ((3.0 + 5.0_f64.sqrt()) / 2.0).sqrt(),
            ((3.0 - 5.0_f64.sqrt()) / 2.0).sqrt(),
        ];
        assert_close(&sv, &expect, 1e-15);
    }

    #[test]
    fn matches_bisection_oracle_on_random_bidiagonals() {
        // Deterministic pseudo-random data without pulling in rand: a
        // simple LCG driving d and e.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 3, 5, 8, 17, 33, 64] {
            let d: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| next()).collect();
            let (sv, _) = dqds_singular_values_with_stats(&d, &e);
            let b = GkBisection::new(&d, &e);
            let oracle: Vec<f64> = (0..n).map(|j| b.nth_largest(j)).collect();
            assert_close(&sv, &oracle, 1e-13);
        }
    }

    #[test]
    fn huge_and_tiny_scales_are_handled() {
        for s in [1e-150_f64, 1e150, 1.0] {
            let d = [3.0 * s, 1.0 * s, 2.0 * s];
            let e = [0.5 * s, 0.25 * s];
            let sv = dqds_singular_values(&d, &e);
            let b = GkBisection::new(&d, &e);
            let oracle: Vec<f64> = (0..3).map(|j| b.nth_largest(j)).collect();
            assert_close(&sv, &oracle, 1e-13);
        }
    }

    #[test]
    fn zero_and_empty() {
        assert!(dqds_singular_values(&[], &[]).is_empty());
        let sv = dqds_singular_values(&[0.0, 0.0], &[0.0]);
        assert_eq!(sv, vec![0.0, 0.0]);
        let sv = dqds_singular_values(&[1.0, 0.0, 2.0], &[0.0, 0.0]);
        assert_close(&sv, &[2.0, 1.0, 0.0], 1e-15);
    }

    #[test]
    fn reused_scratch_is_bitwise_identical_to_fresh_calls() {
        // One warm scratch across a mixed-size stream (including splits via
        // zero superdiagonal entries): every result must equal the
        // allocating entry point bit for bit.
        let mut scratch = DqdsScratch::for_len(8);
        let mut out = Vec::new();
        let problems: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![3.0, -1.0, 2.0], vec![0.0, 0.0]),
            (vec![1.0, 1.0], vec![1.0]),
            (
                (1..=33).map(|i| ((i * 7) % 13) as f64 - 6.0).collect(),
                (1..33).map(|i| ((i * 5) % 11) as f64 / 11.0).collect(),
            ),
            (vec![4.0, 3.0, 2.0, 1.0, 0.5], vec![0.6, 0.0, 0.4, 0.2]),
            (vec![], vec![]),
            (vec![0.0, 0.0], vec![0.0]),
        ];
        for _ in 0..3 {
            for (d, e) in &problems {
                let reference = dqds_singular_values(d, e);
                dqds_singular_values_into(d, e, &mut scratch, &mut out);
                assert_eq!(reference, out, "n={}", d.len());
            }
        }
    }

    #[test]
    fn tiny_singular_value_keeps_relative_accuracy() {
        let (sv, _) = dqds_singular_values_with_stats(&[1.0, 1e-8, 1.0], &[0.0, 0.0]);
        assert!((sv[2] - 1e-8).abs() < 1e-22, "tiny value lost: {}", sv[2]);
    }

    #[test]
    fn nan_input_yields_nan_output_not_a_panic_or_hang() {
        let (sv, stats) =
            dqds_singular_values_with_stats(&[f64::NAN, 1.0, 2.0, 0.5], &[0.5, 0.25, 0.75]);
        assert_eq!(sv.len(), 4);
        assert!(sv.iter().any(|v| v.is_nan()), "poison must stay visible");
        assert!(stats.poisoned_values > 0, "{stats:?}");
    }

    #[test]
    fn ladder_takes_the_slicing_rung_on_finite_segments() {
        // Drive the ladder directly (as budget exhaustion would) on a
        // healthy segment: rung 2 must fire and match the oracle.
        let q = [4.0, 2.25, 1.0, 0.25];
        let e = [0.09, 0.04, 0.01];
        let mut lambdas = Vec::new();
        let mut stats = DqdsStats::default();
        ladder_fallback(&q, &e, 0.5, &mut lambdas, &mut stats);
        assert_eq!(stats.sliced_values, 4);
        assert_eq!(stats.fallback_values, 0);
        let mut oracle = Vec::new();
        let d: Vec<f64> = q.iter().map(|&v| v.sqrt()).collect();
        let ee: Vec<f64> = e.iter().map(|&v| v.sqrt()).collect();
        let b = GkBisection::new(&d, &ee);
        for j in 0..4 {
            let s = b.nth_largest(j);
            oracle.push(s * s + 0.5);
        }
        lambdas.sort_by(|a, b| b.total_cmp(a));
        assert_close(&lambdas, &oracle, 1e-12);
    }

    #[test]
    fn ladder_emits_nan_for_poisoned_segments() {
        let q = [1.0, f64::NAN, 2.0];
        let e = [0.5, 0.5];
        let mut lambdas = Vec::new();
        let mut stats = DqdsStats::default();
        ladder_fallback(&q, &e, 0.0, &mut lambdas, &mut stats);
        assert_eq!(lambdas.len(), 3);
        assert!(lambdas.iter().all(|v| v.is_nan()));
        assert_eq!(stats.poisoned_values, 3);
        assert_eq!(stats.sliced_values, 0);
        assert_eq!(stats.fallback_values, 0);
    }
}
