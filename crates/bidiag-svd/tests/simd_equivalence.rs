//! Forced-backend equivalence of the dqds solver.
//!
//! The dqds pass dispatches on `bidiag_matrix::simd::backend()` like every
//! other hot loop, but its recurrence is a serial `d`-chain, so the AVX2
//! shell is the *same body* recompiled under `target_feature` — no
//! reassociation, no fusion. The contract is therefore stronger than for
//! the other kernels: both backends must produce **bitwise-identical**
//! singular values, and this suite pins exact equality (not a tolerance).

use bidiag_matrix::simd::{self, SimdBackend};
use bidiag_svd::dqds_singular_values;

/// Deterministic LCG test data.
fn lcg(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn dqds_is_bitwise_identical_across_backends() {
    if !simd::avx2_available() {
        eprintln!("skipping cross-backend test: AVX2+FMA not available");
        return;
    }
    for n in [1usize, 2, 3, 5, 8, 17, 33, 64, 129] {
        let d: Vec<f64> = lcg(n, n as u64).iter().map(|v| v * 3.0).collect();
        let e = lcg(n.saturating_sub(1), 7 + n as u64);
        let s = simd::with_forced_backend(SimdBackend::Scalar, || dqds_singular_values(&d, &e));
        let v = simd::with_forced_backend(SimdBackend::Avx2, || dqds_singular_values(&d, &e));
        assert_eq!(s.len(), v.len());
        for (i, (a, b)) in s.iter().zip(&v).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "dqds n={n} sv[{i}] diverged across backends: {a} vs {b}"
            );
        }
    }
}

#[test]
fn dqds_graded_and_clustered_spectra_are_bitwise_identical() {
    if !simd::avx2_available() {
        eprintln!("skipping cross-backend test: AVX2+FMA not available");
        return;
    }
    // Graded diagonal (stresses flips + aggressive deflation) and a
    // clustered one (stresses shift rejection): the backend switch must not
    // change a single branch decision anywhere in the driver.
    let n = 48;
    let graded: Vec<f64> = (0..n).map(|i| 10f64.powi(-((i % 12) as i32))).collect();
    let clustered: Vec<f64> = (0..n).map(|i| 1.0 + 1e-10 * (i as f64)).collect();
    let e: Vec<f64> = lcg(n - 1, 99).iter().map(|v| 0.3 * v).collect();
    for d in [graded, clustered] {
        let s = simd::with_forced_backend(SimdBackend::Scalar, || dqds_singular_values(&d, &e));
        let v = simd::with_forced_backend(SimdBackend::Avx2, || dqds_singular_values(&d, &e));
        for (a, b) in s.iter().zip(&v) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
