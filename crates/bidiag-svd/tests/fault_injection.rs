//! Fault-injection tests of the dqds fallback ladder, driven by the
//! `failpoint` shim's named injection points (`svd::segment`,
//! `svd::sliced-rung`).
//!
//! Gated behind the `failpoints` cargo feature so the process-global
//! failpoint registry is only armed in the dedicated CI leg; within this
//! binary every test serializes through `failpoint::scoped`.

#![cfg(feature = "failpoints")]

use bidiag_svd::{
    bisection_singular_values, dqds_singular_values_with_stats, singular_values_with_report,
    Bd2ValOptions,
};
use failpoint::FailAction;

const D: [f64; 6] = [4.0, -3.0, 2.5, 1.0, 0.5, 0.25];
const E: [f64; 5] = [0.7, -0.3, 0.2, 0.1, 0.05];

fn assert_matches_oracle(sv: &[f64]) {
    let oracle = bisection_singular_values(&D, &E);
    assert_eq!(sv.len(), oracle.len());
    for (s, o) in sv.iter().zip(&oracle) {
        assert!((s - o).abs() <= 1e-12 * oracle[0], "{s} vs {o}");
    }
}

#[test]
fn injected_nan_poisons_the_segment_and_surfaces_as_nan_output() {
    let _guard = failpoint::scoped(&[("svd::segment", FailAction::PoisonNan)]);
    let (sv, stats) = dqds_singular_values_with_stats(&D, &E);
    assert!(failpoint::hits("svd::segment") > 0, "site never fired");
    assert_eq!(sv.len(), D.len());
    assert!(
        sv.iter().any(|v| v.is_nan()),
        "poison was laundered: {sv:?}"
    );
    assert!(stats.poisoned_values > 0, "{stats:?}");
}

#[test]
fn forced_ladder_takes_the_slicing_rung_and_stays_correct() {
    let _guard = failpoint::scoped(&[("svd::segment", FailAction::Trigger)]);
    let (sv, stats) = dqds_singular_values_with_stats(&D, &E);
    assert!(failpoint::hits("svd::segment") > 0, "site never fired");
    assert_eq!(stats.sliced_values, D.len(), "{stats:?}");
    assert_eq!(stats.fallback_values, 0, "{stats:?}");
    assert_matches_oracle(&sv);
}

#[test]
fn failed_slicing_rung_escalates_to_the_bisection_oracle() {
    let _guard = failpoint::scoped(&[
        ("svd::segment", FailAction::Trigger),
        ("svd::sliced-rung", FailAction::Trigger),
    ]);
    let (sv, stats) = dqds_singular_values_with_stats(&D, &E);
    assert!(failpoint::hits("svd::sliced-rung") > 0, "rung never fired");
    assert_eq!(stats.fallback_values, D.len(), "{stats:?}");
    assert_eq!(stats.sliced_values, 0, "{stats:?}");
    assert_matches_oracle(&sv);
}

#[test]
fn solve_report_flags_non_finite_output() {
    let opts = Bd2ValOptions::default();
    {
        let _guard = failpoint::scoped(&[("svd::segment", FailAction::PoisonNan)]);
        let (_, report) = singular_values_with_report(&D, &E, &opts);
        assert!(!report.finite, "{report:?}");
        assert!(report.dqds.poisoned_values > 0, "{report:?}");
    }
    // Disarmed again: the same solve is clean and the report says so.
    let _guard = failpoint::scoped(&[]);
    let (sv, report) = singular_values_with_report(&D, &E, &opts);
    assert!(report.finite, "{report:?}");
    assert_eq!(report.dqds.poisoned_values, 0);
    assert_matches_oracle(&sv);
}
