//! Property tests pinning the production solvers — dqds and sliced
//! bisection — to the [`GkBisection`] per-value oracle at 1e-13 relative
//! accuracy, across the spectrum shapes the subsystem must survive:
//! clustered values, graded spectra (condition 1e12), random signs,
//! tiny (`1e-8`) values and zero/empty edge cases, both on directly
//! constructed bidiagonals and on `latms` matrices reduced through
//! `gebd2`.

use bidiag_kernels::gebd2::gebd2;
use bidiag_matrix::checks::singular_values_match;
use bidiag_matrix::gen::{latms, random_gaussian, SpectrumKind};
use bidiag_svd::{
    dqds_singular_values_with_stats, singular_values_with, Bd2ValOptions, GkBisection, SvdSolver,
};
use proptest::prelude::*;

/// Per-value relative agreement with the oracle: `|a - b| <= tol *
/// max(|a|, |b|)` with an absolute floor far below any resolvable value
/// (`1e-18 * sigma_max` — values below the oracle's own zero floor of
/// `1e-20 * bound` are indistinguishable from exact zeros).
fn assert_rel_close(got: &[f64], oracle: &[f64], tol: f64, ctx: &str) {
    assert_eq!(got.len(), oracle.len(), "{ctx}: length mismatch");
    let smax = oracle.first().copied().unwrap_or(0.0).abs();
    let floor = 1e-18 * smax;
    for (i, (a, b)) in got.iter().zip(oracle).enumerate() {
        assert!(
            (a - b).abs() <= tol * a.abs().max(b.abs()) + floor,
            "{ctx}: value {i}: {a} vs oracle {b} (smax {smax})"
        );
    }
}

/// Run both production solvers against the oracle on one bidiagonal.
fn check_against_oracle(d: &[f64], e: &[f64], ctx: &str) {
    let b = GkBisection::new(d, e);
    let oracle: Vec<f64> = (0..b.num_values()).map(|j| b.nth_largest(j)).collect();

    let (dq, _) = dqds_singular_values_with_stats(d, e);
    assert_rel_close(&dq, &oracle, 1e-13, &format!("{ctx} [dqds]"));

    for vps in [4usize, 32] {
        let opts = Bd2ValOptions::default()
            .with_solver(SvdSolver::SlicedBisection)
            .with_values_per_task(vps);
        let sl = singular_values_with(d, e, &opts);
        assert_rel_close(&sl, &oracle, 1e-13, &format!("{ctx} [sliced vps={vps}]"));
    }
}

/// Reduce a latms matrix with the given spectrum to bidiagonal form and
/// check all solvers on it (against the oracle at 1e-13 relative, and
/// against the prescribed spectrum at orthogonal-reduction accuracy).
fn check_latms_spectrum(m: usize, n: usize, spectrum: &SpectrumKind, seed: u64, ctx: &str) {
    let (a, sigma) = latms(m, n, spectrum, seed);
    let mut w = a.clone();
    let bd = gebd2(&mut w);
    check_against_oracle(&bd.diag, &bd.superdiag, ctx);
    for solver in [SvdSolver::Dqds, SvdSolver::SlicedBisection] {
        let sv = singular_values_with(
            &bd.diag,
            &bd.superdiag,
            &Bd2ValOptions::default().with_solver(solver),
        );
        assert!(
            singular_values_match(&sv, &sigma, 1e-10),
            "{ctx} [{solver:?}]: prescribed spectrum not recovered"
        );
    }
}

#[test]
fn clustered_spectra() {
    // Ten-fold clusters, a cluster at the bottom, and a cluster of zeros.
    let mut spec = vec![7.0; 10];
    spec.extend(vec![3.0; 6]);
    spec.extend(vec![1e-3; 4]);
    check_latms_spectrum(28, 20, &SpectrumKind::Explicit(spec), 11, "clusters");

    let spec = vec![5.0, 5.0, 5.0, 2.0, 2.0, 0.0, 0.0, 0.0];
    check_latms_spectrum(16, 8, &SpectrumKind::Explicit(spec), 13, "zero cluster");
}

#[test]
fn graded_condition_1e12() {
    // Through latms + gebd2 (sigma_max-relative recovery) ...
    check_latms_spectrum(
        24,
        18,
        &SpectrumKind::Geometric { cond: 1e12 },
        7,
        "graded latms",
    );

    // ... and directly constructed graded bidiagonals with random signs,
    // where tiny values must keep *relative* accuracy down to 1e-12.
    for (n, seed) in [(12usize, 1u64), (33, 2), (48, 3)] {
        let g = random_gaussian(n, 2, seed ^ 0xbeef);
        let cond: f64 = 1e12;
        let d: Vec<f64> = (0..n)
            .map(|i| {
                let mag = cond.powf(-(i as f64) / (n as f64 - 1.0));
                mag * g.get(i, 0).signum()
            })
            .collect();
        let e: Vec<f64> = (0..n - 1)
            .map(|i| 0.25 * (d[i].abs() * d[i + 1].abs()).sqrt() * g.get(i, 1).signum())
            .collect();
        check_against_oracle(&d, &e, &format!("graded direct n={n}"));
    }
}

#[test]
fn tiny_values_1e_minus_8() {
    let spec = vec![4.0, 3.0, 2.0, 1.0, 1e-8, 1e-8];
    check_latms_spectrum(14, 6, &SpectrumKind::Explicit(spec), 5, "tiny latms");

    // Direct: an isolated 1e-8 on the diagonal must come back relatively
    // exact from every solver.
    let d = [1.0, 1e-8, 1.0, 0.5];
    let e = [0.0, 0.0, 0.0];
    check_against_oracle(&d, &e, "tiny direct");
    let (sv, _) = dqds_singular_values_with_stats(&d, &e);
    assert!((sv[3] - 1e-8).abs() < 1e-22, "dqds lost the tiny value");
}

#[test]
fn zero_and_empty_edge_cases() {
    check_against_oracle(&[], &[], "empty");
    check_against_oracle(&[0.0], &[], "1x1 zero");
    check_against_oracle(&[0.0, 0.0, 0.0], &[0.0, 0.0], "zero matrix");
    check_against_oracle(&[1.0, 0.0, 2.0, 0.0], &[0.5, 0.25, 0.125], "zero diagonals");
    check_against_oracle(&[0.0, 3.0], &[1.0], "leading zero");
    for solver in [SvdSolver::Dqds, SvdSolver::SlicedBisection] {
        let opts = Bd2ValOptions::default().with_solver(solver);
        assert!(singular_values_with(&[], &[], &opts).is_empty());
        assert_eq!(
            singular_values_with(&[0.0, 0.0], &[0.0], &opts),
            vec![0.0, 0.0]
        );
    }
}

#[test]
fn dqds_fast_path_actually_runs_on_benign_input() {
    // The oracle fallback must be an exception, not the steady state: on
    // random full-rank data every value comes from the qd iteration.
    let n = 64;
    let g = random_gaussian(n, 2, 99);
    let d: Vec<f64> = (0..n).map(|i| 1.0 + g.get(i, 0).abs()).collect();
    let e: Vec<f64> = (0..n - 1).map(|i| g.get(i, 1)).collect();
    let (_, stats) = dqds_singular_values_with_stats(&d, &e);
    assert_eq!(stats.fallback_values, 0, "dqds fell back on benign input");
    assert!(stats.passes > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bidiagonals (random magnitudes *and* signs): dqds and the
    /// sliced path agree with the oracle at 1e-13 relative.
    #[test]
    fn random_sign_bidiagonals_match_oracle(n in 1usize..40, seed in 0u64..500) {
        let g = random_gaussian(n.max(1), 2, seed);
        let d: Vec<f64> = (0..n).map(|i| 3.0 * g.get(i, 0)).collect();
        let e: Vec<f64> = (0..n.saturating_sub(1)).map(|i| g.get(i, 1)).collect();
        check_against_oracle(&d, &e, &format!("random n={n} seed={seed}"));
    }

    /// Random *scaled* bidiagonals: the dqds power-of-two prescaling keeps
    /// extreme exponents exact.
    #[test]
    fn extreme_scales_match_oracle(n in 2usize..24, seed in 0u64..100, exp_off in 0u32..240) {
        let exp = exp_off as i32 - 120;
        let s = 2.0f64.powi(exp);
        let g = random_gaussian(n, 2, seed ^ 0x5ca1e);
        let d: Vec<f64> = (0..n).map(|i| s * g.get(i, 0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| s * g.get(i, 1)).collect();
        check_against_oracle(&d, &e, &format!("scaled 2^{exp} n={n} seed={seed}"));
    }
}
