//! A miniature "embedding service": one long-lived [`SvdSession`] serving a
//! stream of small SVD requests of mixed sizes, the workload the persistent
//! batched runtime was built for — now running the hardened service plane:
//!
//! * **Bounded admission.**  The session is created with a small
//!   [`SessionConfig::max_in_flight`] window; the service loop uses
//!   [`SvdSession::try_submit`] and *sheds* requests with
//!   [`SvdError::QueueFull`] instead of queueing unboundedly (a shed
//!   request would be retried or rerouted by a real front-end).
//! * **Per-request deadlines.**  Every harvest goes through
//!   [`SvdJob::wait_timeout`]; a request that overruns its budget is
//!   cancelled and counted, not waited on forever.
//! * **Poison containment.**  A request carrying NaN (a corrupted upstream
//!   feature vector) is rejected at submission with
//!   [`SvdError::NonFiniteInput`] — the shared pool never sees it, and the
//!   service keeps answering the healthy traffic.
//!
//! Prints per-request latency percentiles (p50/p99), the sustained
//! throughput, and the shed/rejected/deadline counters.
//!
//! Run with: `cargo run --release --example embedding_service`

use bidiag_repro::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    // A service-sized admission window: big enough to keep the workers fed,
    // small enough that a burst cannot pile up unbounded job graphs.
    let window = (4 * threads).max(8);
    let session = SvdSession::with_config(
        Ge2Options::new(64)
            .with_threads(threads)
            .with_direct_crossover(DIRECT_CROSSOVER),
        SessionConfig {
            max_in_flight: window,
            admission: AdmissionPolicy::Reject,
        },
    );

    // The request mix: covariance/Gram-sized problems a feature service
    // would see — mostly small, a few above the direct-path crossover.
    let sizes = [16usize, 24, 32, 48, 64, 96];
    let pool: Vec<Matrix> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| random_gaussian(n, n, 7 + i as u64))
        .collect();
    // One corrupted request: a NaN smuggled into an otherwise fine matrix.
    let poison = {
        let mut a = pool[0].clone();
        a.set(3, 3, f64::NAN);
        a
    };
    let requests = 2_000usize;
    let deadline = Duration::from_secs(5);
    println!(
        "serving {requests} requests of sizes {sizes:?} on one SvdSession \
         ({threads} thread(s), window {window}, crossover at {DIRECT_CROSSOVER})"
    );

    // Warm the arenas so the measured stream is steady-state.
    for a in &pool {
        let sv = session.submit(a).unwrap().wait().unwrap();
        assert!(!sv.is_empty());
    }

    let mut latencies_us: Vec<f64> = Vec::with_capacity(requests);
    let mut inflight: Vec<(Instant, SvdJob)> = Vec::with_capacity(window);
    let mut shed = 0usize;
    let mut rejected = 0usize;
    let mut timed_out = 0usize;
    let harvest = |inflight: &mut Vec<(Instant, SvdJob)>,
                   latencies_us: &mut Vec<f64>,
                   timed_out: &mut usize| {
        for (submitted, job) in inflight.drain(..) {
            match job.wait_timeout(deadline) {
                Ok(sv) => {
                    latencies_us.push(submitted.elapsed().as_secs_f64() * 1.0e6);
                    assert!(sv[0] >= *sv.last().unwrap());
                }
                Err(SvdError::TimedOut) => *timed_out += 1,
                Err(e) => panic!("request failed: {e}"),
            }
        }
    };

    let t0 = Instant::now();
    for r in 0..requests {
        // Every 500th request is the poisoned one; it must bounce off the
        // submission boundary without disturbing the session.
        if r % 500 == 250 {
            match session.try_submit(&poison) {
                Err(SvdError::NonFiniteInput { row, col, .. }) => {
                    rejected += 1;
                    assert_eq!((row, col), (3, 3));
                }
                other => panic!("poison was admitted: {:?}", other.map(|_| ())),
            }
        }
        let a = &pool[r % pool.len()];
        match session.try_submit(a) {
            Ok(job) => inflight.push((Instant::now(), job)),
            // Window full: shed this request and drain the backlog, like a
            // load balancer retrying against another replica.
            Err(SvdError::QueueFull { .. }) => {
                shed += 1;
                harvest(&mut inflight, &mut latencies_us, &mut timed_out);
            }
            Err(e) => panic!("submission failed: {e}"),
        }
        if inflight.len() == window {
            harvest(&mut inflight, &mut latencies_us, &mut timed_out);
        }
    }
    harvest(&mut inflight, &mut latencies_us, &mut timed_out);
    let elapsed = t0.elapsed().as_secs_f64();
    let answered = latencies_us.len();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    println!(
        "latency: p50 {:.0} us, p99 {:.0} us, max {:.0} us (window of {window} in flight)",
        pct(0.50),
        pct(0.99),
        latencies_us.last().unwrap()
    );
    println!(
        "throughput: {:.0} problems/s ({answered} answered in {:.2} s)",
        answered as f64 / elapsed,
        elapsed
    );
    println!(
        "robustness: {rejected} poisoned request(s) rejected, {shed} shed on backpressure, \
         {timed_out} past the {deadline:?} deadline; peak in flight {} <= {window}",
        session.in_flight_peak()
    );
    assert!(rejected > 0, "the poisoned requests never arrived");
    assert!(session.in_flight_peak() <= window);
    assert_eq!(answered + shed, requests, "requests lost");
}
