//! A miniature "embedding service": one long-lived [`SvdSession`] serving a
//! stream of small SVD requests of mixed sizes, the workload the persistent
//! batched runtime was built for.  Tiny problems (here up to 64) take the
//! in-session direct path; larger ones run their tile DAG on the same
//! worker pool, and independent requests interleave on the same deques.
//!
//! Prints per-request latency percentiles (p50/p99) and the sustained
//! throughput in problems per second.
//!
//! Run with: `cargo run --release --example embedding_service`

use bidiag_repro::prelude::*;
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    let session = SvdSession::new(threads);

    // The request mix: covariance/Gram-sized problems a feature service
    // would see — mostly small, a few above the direct-path crossover.
    let sizes = [16usize, 24, 32, 48, 64, 96];
    let pool: Vec<Matrix> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| random_gaussian(n, n, 7 + i as u64))
        .collect();
    let requests = 2_000usize;
    println!(
        "serving {requests} requests of sizes {sizes:?} on one SvdSession ({threads} thread(s), crossover at {DIRECT_CROSSOVER})"
    );

    // Warm the arenas so the measured stream is steady-state.
    for a in &pool {
        assert!(!session.submit(a).wait().is_empty());
    }

    // Keep a bounded number of requests in flight, like a service with a
    // small admission window: submit, then harvest in order.
    let window = (4 * threads).max(8);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(requests);
    let mut inflight: Vec<(Instant, SvdJob)> = Vec::with_capacity(window);
    let t0 = Instant::now();
    for r in 0..requests {
        let a = &pool[r % pool.len()];
        inflight.push((Instant::now(), session.submit(a)));
        if inflight.len() == window {
            for (submitted, job) in inflight.drain(..) {
                let sv = job.wait();
                latencies_us.push(submitted.elapsed().as_secs_f64() * 1.0e6);
                assert!(sv[0] >= *sv.last().unwrap());
            }
        }
    }
    for (submitted, job) in inflight.drain(..) {
        job.wait();
        latencies_us.push(submitted.elapsed().as_secs_f64() * 1.0e6);
    }
    let elapsed = t0.elapsed().as_secs_f64();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    println!(
        "latency: p50 {:.0} us, p99 {:.0} us, max {:.0} us (window of {window} in flight)",
        pct(0.50),
        pct(0.99),
        latencies_us.last().unwrap()
    );
    println!(
        "throughput: {:.0} problems/s ({requests} requests in {:.2} s)",
        requests as f64 / elapsed,
        elapsed
    );
}
