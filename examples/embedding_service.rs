//! A miniature "embedding service": one long-lived [`SvdSession`] serving a
//! stream of small SVD requests of mixed sizes, the workload the persistent
//! batched runtime was built for — now running the hardened service plane:
//!
//! * **Bounded admission.**  The session is created with a small
//!   [`SessionConfig::max_in_flight`] window; the service loop uses
//!   [`SvdSession::try_submit`] and *sheds* requests with
//!   [`SvdError::QueueFull`] instead of queueing unboundedly (a shed
//!   request would be retried or rerouted by a real front-end).
//! * **Per-request deadlines.**  Every harvest goes through
//!   [`SvdJob::wait_timeout`]; a request that overruns its budget is
//!   cancelled and counted, not waited on forever.
//! * **Poison containment.**  A request carrying NaN (a corrupted upstream
//!   feature vector) is rejected at submission with
//!   [`SvdError::NonFiniteInput`] — the shared pool never sees it, and the
//!   service keeps answering the healthy traffic.
//!
//! Prints per-request latency percentiles (p50/p99) from the observability
//! plane's latency histogram, the sustained throughput, the
//! shed/rejected/deadline counters, and the full metrics snapshot at exit.
//! Set `BIDIAG_TRACE=/tmp/service.json` to also get a Perfetto-loadable
//! trace of the run.
//!
//! Run with: `cargo run --release --example embedding_service`

use bidiag_repro::obs;
use bidiag_repro::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    // The service measures itself through the observability plane: the pool
    // records queue-wait/compute/latency per submission, shed requests, and
    // the in-flight peak.
    obs::set_enabled(true);
    let threads = std::thread::available_parallelism().map_or(1, |c| c.get());
    // A service-sized admission window: big enough to keep the workers fed,
    // small enough that a burst cannot pile up unbounded job graphs.
    let window = (4 * threads).max(8);
    let session = SvdSession::with_config(
        Ge2Options::new(64)
            .with_threads(threads)
            .with_direct_crossover(DIRECT_CROSSOVER),
        SessionConfig {
            max_in_flight: window,
            admission: AdmissionPolicy::Reject,
        },
    );

    // The request mix: covariance/Gram-sized problems a feature service
    // would see — mostly small, a few above the direct-path crossover.
    let sizes = [16usize, 24, 32, 48, 64, 96];
    let pool: Vec<Matrix> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| random_gaussian(n, n, 7 + i as u64))
        .collect();
    // One corrupted request: a NaN smuggled into an otherwise fine matrix.
    let poison = {
        let mut a = pool[0].clone();
        a.set(3, 3, f64::NAN);
        a
    };
    let requests = 2_000usize;
    let deadline = Duration::from_secs(5);
    println!(
        "serving {requests} requests of sizes {sizes:?} on one SvdSession \
         ({threads} thread(s), window {window}, crossover at {DIRECT_CROSSOVER})"
    );

    // Warm the arenas so the measured stream is steady-state, then clear
    // the warmup's samples out of the registry.
    for a in &pool {
        let sv = session.submit(a).unwrap().wait().unwrap();
        assert!(!sv.is_empty());
    }
    obs::registry().reset();

    let mut inflight: Vec<SvdJob> = Vec::with_capacity(window);
    let mut answered = 0usize;
    let mut shed = 0usize;
    let mut rejected = 0usize;
    let mut timed_out = 0usize;
    let harvest = |inflight: &mut Vec<SvdJob>, answered: &mut usize, timed_out: &mut usize| {
        for job in inflight.drain(..) {
            match job.wait_timeout(deadline) {
                Ok(sv) => {
                    *answered += 1;
                    assert!(sv[0] >= *sv.last().unwrap());
                }
                Err(SvdError::TimedOut) => *timed_out += 1,
                Err(e) => panic!("request failed: {e}"),
            }
        }
    };

    let t0 = Instant::now();
    for r in 0..requests {
        // Every 500th request is the poisoned one; it must bounce off the
        // submission boundary without disturbing the session.
        if r % 500 == 250 {
            match session.try_submit(&poison) {
                Err(SvdError::NonFiniteInput { row, col, .. }) => {
                    rejected += 1;
                    assert_eq!((row, col), (3, 3));
                }
                other => panic!("poison was admitted: {:?}", other.map(|_| ())),
            }
        }
        let a = &pool[r % pool.len()];
        match session.try_submit(a) {
            Ok(job) => inflight.push(job),
            // Window full: shed this request and drain the backlog, like a
            // load balancer retrying against another replica.
            Err(SvdError::QueueFull { .. }) => {
                shed += 1;
                harvest(&mut inflight, &mut answered, &mut timed_out);
            }
            Err(e) => panic!("submission failed: {e}"),
        }
        if inflight.len() == window {
            harvest(&mut inflight, &mut answered, &mut timed_out);
        }
    }
    harvest(&mut inflight, &mut answered, &mut timed_out);
    let elapsed = t0.elapsed().as_secs_f64();

    // Percentiles come from the registry's log2-bucketed latency histogram
    // (submission to completion, queue wait included), recorded by the pool
    // itself rather than by per-request stopwatches in the service loop.
    let snap = obs::registry().snapshot();
    let us = |ns: f64| ns / 1.0e3;
    println!(
        "latency: p50 {:.0} us, p99 {:.0} us, max {:.0} us (window of {window} in flight)",
        us(snap.latency.quantile(0.50)),
        us(snap.latency.quantile(0.99)),
        us(snap.latency.max as f64)
    );
    println!(
        "queue wait: p99 {:.0} us (mean {:.0} us) of {:.0} us mean latency",
        us(snap.queue_wait.quantile(0.99)),
        us(snap.queue_wait.mean()),
        us(snap.latency.mean())
    );
    println!(
        "throughput: {:.0} problems/s ({answered} answered in {:.2} s)",
        answered as f64 / elapsed,
        elapsed
    );
    println!(
        "robustness: {rejected} poisoned request(s) rejected, {shed} shed on backpressure, \
         {timed_out} past the {deadline:?} deadline; peak in flight {} <= {window}",
        session.in_flight_peak()
    );
    println!("--- metrics snapshot ---\n{snap}");
    assert!(rejected > 0, "the poisoned requests never arrived");
    assert!(session.in_flight_peak() <= window);
    assert_eq!(answered + shed, requests, "requests lost");
    assert_eq!(
        snap.shed_submissions, shed as u64,
        "shed accounting drifted"
    );
    // Timed-out jobs are cancelled but still drain through the pool, so
    // their completion may land after the snapshot: lower-bound only.
    assert!(snap.latency.count >= answered as u64);
    if let Some(path) = obs::write_trace_if_requested().expect("trace written") {
        println!("trace written to {path} (open in ui.perfetto.dev)");
    }
}
