//! Explore the critical paths of the six algorithm/tree combinations and the
//! BIDIAG vs R-BIDIAG crossover for a matrix shape given on the command line.
//!
//! Run with: `cargo run --release --example critical_path_explorer -- 32 8`
//! (arguments are the number of tile rows `p` and tile columns `q`).

use bidiag_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let q: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    assert!(p >= q && q >= 1, "need p >= q >= 1");

    println!("critical paths for a {p} x {q} tile matrix (unit: nb^3/3 flops)\n");
    println!(
        "{:<10} {:>16} {:>16} {:>10}",
        "tree", "BiDiag", "R-BiDiag", "ratio"
    );
    for tree in [NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy] {
        let b = cp::measured_cp(Algorithm::Bidiag, tree, p, q);
        let r = cp::measured_cp(Algorithm::RBidiag, tree, p, q);
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>10.3}",
            tree.name(),
            b,
            r,
            b / r
        );
    }

    println!("\nclosed-form checks (BiDiag):");
    println!("  FlatTS formula  : {}", cp::bidiag_cp_flatts_closed(p, q));
    println!("  FlatTT formula  : {}", cp::bidiag_cp_flattt_closed(p, q));
    println!("  Greedy formula  : {}", cp::bidiag_cp_greedy_closed(p, q));

    if (2..=12).contains(&q) {
        let c = cp::crossover(q, 16);
        match c.ratio {
            Some(r) => println!(
                "\ncrossover for q = {q}: R-BiDiag wins from p = {} (delta_s = {r:.2})",
                c.p_star.unwrap()
            ),
            None => println!("\ncrossover for q = {q}: not reached below p = 16q"),
        }
    }

    // Task-level parallelism profile of the GREEDY BIDIAG DAG.
    let ops = bidiag_ops(p, q, &GenConfig::shared(NamedTree::Greedy));
    let graph = bidiag_repro::core::exec::build_graph(&ops, q, &BlockCyclic::single_node());
    println!("\nGREEDY BiDiag DAG: {} tasks, critical path {:.0}, max parallelism {}, sequential/CP = {:.1}",
        graph.len(),
        graph.critical_path(),
        graph.max_parallelism(),
        graph.total_weight() / graph.critical_path());
}
