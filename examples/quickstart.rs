//! Quickstart: compute the singular values of a matrix with the tiled
//! two-stage pipeline (GE2BND -> BND2BD -> BD2VAL) and check them against
//! the prescribed spectrum, exactly like the sanity check the paper performs
//! for every experiment.
//!
//! Run with: `cargo run --release --example quickstart`

use bidiag_repro::prelude::*;

fn main() {
    // A 600 x 400 matrix with a prescribed geometric spectrum (cond = 1e6),
    // the kind of test matrix LAPACK's LATMS produces.
    let (m, n) = (600, 400);
    let (a, sigma) = latms(m, n, &SpectrumKind::Geometric { cond: 1.0e6 }, 2024);
    println!("matrix: {m} x {n}, prescribed condition number 1e6");

    // Tiled bidiagonalization with the GREEDY reduction tree on 4 threads.
    let opts = Ge2Options::new(64)
        .with_tree(NamedTree::Greedy)
        .with_threads(4);
    let result = ge2val(&a, &opts);

    let stage1 = result.ge2bnd.as_ref().expect("blocked pipeline ran");
    println!("algorithm selected by Chan's rule: {:?}", stage1.algorithm);
    println!("tile tasks executed: {}", stage1.num_tasks);
    println!(
        "largest singular values: {:?}",
        &result.singular_values[..5.min(n)]
    );

    let err = singular_value_error(&result.singular_values, &sigma);
    println!("max relative error vs prescribed spectrum: {err:.2e}");
    assert!(
        err < 1e-10,
        "singular values should be accurate to ~machine precision"
    );
    println!("OK — singular values recovered to machine precision");
}
