//! Principal component analysis of a tall-and-skinny data set.
//!
//! The paper's introduction motivates bidiagonalization with PCA on large
//! data matrices.  This example builds a synthetic data set of 20 000
//! samples with 128 features drawn from a low-rank-plus-noise model,
//! computes its singular values with both BIDIAG and R-BIDIAG, verifies they
//! agree, and reports the explained-variance profile together with the
//! operation counts that make R-BIDIAG the right choice for this shape.
//!
//! Run with: `cargo run --release --example pca_tall_skinny`

use bidiag_repro::prelude::*;

fn main() {
    let samples = 20_000;
    let features = 128;
    let intrinsic_rank = 8;

    // Low-rank signal + noise: X = L * F + 0.05 * E.
    let l = random_gaussian(samples, intrinsic_rank, 1);
    let f = random_gaussian(intrinsic_rank, features, 2);
    let mut x = l.matmul(&f);
    let noise = random_gaussian(samples, features, 3);
    x.axpy(0.05, &noise);

    println!("data matrix: {samples} x {features} (intrinsic rank {intrinsic_rank})");
    println!(
        "flop counts: BIDIAG = {:.2e}, R-BIDIAG = {:.2e} (Chan crossover at m >= 5n/3)",
        flops::bidiag_flops(samples, features),
        flops::rbidiag_flops(samples, features)
    );

    let opts_r = Ge2Options::new(32)
        .with_tree(NamedTree::Greedy)
        .with_threads(4)
        .with_algorithm(AlgorithmChoice::RBidiag);
    let opts_b = Ge2Options::new(32)
        .with_tree(NamedTree::Greedy)
        .with_threads(4)
        .with_algorithm(AlgorithmChoice::Bidiag);
    let sv_r = ge2val(&x, &opts_r).singular_values;
    let sv_b = ge2val(&x, &opts_b).singular_values;
    assert!(
        singular_values_match(&sv_r, &sv_b, 1e-10),
        "BIDIAG and R-BIDIAG must agree"
    );

    let total_var: f64 = sv_r.iter().map(|s| s * s).sum();
    let mut cum = 0.0;
    println!("\ncomponent  sigma        cumulative explained variance");
    for (i, s) in sv_r.iter().take(12).enumerate() {
        cum += s * s;
        println!(
            "{:>9}  {:>10.3}  {:>6.2} %",
            i + 1,
            s,
            100.0 * cum / total_var
        );
    }
    let explained: f64 = sv_r.iter().take(intrinsic_rank).map(|s| s * s).sum::<f64>() / total_var;
    println!(
        "\nfirst {intrinsic_rank} components explain {:.1}% of the variance",
        100.0 * explained
    );
    assert!(explained > 0.95, "the low-rank signal should dominate");
}
