//! Simulate the distributed-memory execution of GE2BND on a cluster of
//! 24-core nodes with a 2D block-cyclic distribution, as in Section VI.D of
//! the paper, and print the strong-scaling profile of the four trees.
//!
//! Run with: `cargo run --release --example distributed_simulation -- 6000 6000`

use bidiag_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6000);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6000);
    let nb = 160;
    let p = m.div_ceil(nb);
    let q = n.div_ceil(nb);
    let algorithm = if 3 * m >= 5 * n {
        Algorithm::RBidiag
    } else {
        Algorithm::Bidiag
    };

    println!(
        "GE2BND strong scaling, M={m} N={n} nb={nb} ({p} x {q} tiles), algorithm {algorithm:?}"
    );
    println!(
        "{:<7} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "nodes", "FlatTS", "FlatTT", "Greedy", "Auto", "messages"
    );

    for nodes in [1usize, 2, 4, 9, 16, 25] {
        let grid = if m == n {
            BlockCyclic::square_grid(nodes)
        } else {
            BlockCyclic::tall_grid(nodes)
        };
        let cfg = if nodes == 1 {
            GenConfig::shared(NamedTree::Greedy)
        } else {
            GenConfig::distributed(NamedTree::Greedy, grid)
        };
        let mut rates = Vec::new();
        let mut msgs = 0;
        for tree in NamedTree::paper_variants(24) {
            let cfg = GenConfig { tree, ..cfg };
            let ops = ge2bnd_ops(p, q, algorithm, &cfg);
            let graph = bidiag_repro::core::exec::build_graph(&ops, q, &grid);
            let machine = MachineModel::calibrated(nodes, 24, 37.0, nb, 5.0, 2.0e-6);
            let sim = simulate(&graph, &machine);
            msgs = sim.messages;
            rates.push(flops::gflops(flops::reporting_flops(m, n), sim.makespan));
        }
        println!(
            "{:<7} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>12}",
            nodes, rates[0], rates[1], rates[2], rates[3], msgs
        );
    }
    println!("\n(rates in GFlop/s, normalised by the BIDIAG operation count; communication model alpha+beta)");
}
