//! Integration tests of the observability plane (PR 10).
//!
//! Every test takes a [`ScopedObs`] guard: scopes serialize all
//! observability tests across threads (the span rings and the metrics
//! registry are process-global), force recording on, and filter spans to
//! those recorded inside the scope.
//!
//! The headline test closes the paper's loop: a threaded GE2BND reference
//! run is traced, the recorded spans are reattached to the task DAG, and
//! the measured longest dependent chain must equal the Section IV model's
//! chain — made deterministic by the executor's record-before-release
//! invariant (`end[pred] <= start[succ]` on every edge).

use bidiag_repro::core::cp;
use bidiag_repro::core::exec::build_graph;
use bidiag_repro::obs;
use bidiag_repro::prelude::*;
use bidiag_repro::runtime::validate_trace;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The reference GE2BND problem: m = 64, n = 48, nb = 16 (p = 4, q = 3
/// tiles), greedy tree — the same shape the kernels bench gates on.
const M: usize = 64;
const N: usize = 48;
const NB: usize = 16;
const P: usize = 4;
const Q: usize = 3;

fn reference_matrix() -> Matrix {
    latms(M, N, &SpectrumKind::Geometric { cond: 1.0e4 }, 7).0
}

fn reference_opts(threads: usize) -> Ge2Options {
    Ge2Options::new(NB)
        .with_tree(NamedTree::Greedy)
        .with_algorithm(AlgorithmChoice::Bidiag)
        .with_threads(threads)
}

/// Kernel-task spans (tags 0..=12) of the single executor run inside the
/// scope, sorted by start time.
fn kernel_spans(scope: &ScopedObs) -> Vec<Span> {
    let spans: Vec<Span> = scope.spans().into_iter().filter(|s| s.kind <= 12).collect();
    let subs: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.submission).collect();
    assert_eq!(
        subs.len(),
        1,
        "expected exactly one traced run, got {subs:?}"
    );
    spans
}

#[test]
fn concurrent_ring_writers_produce_no_torn_spans_and_bounded_rings() {
    let _scope = ScopedObs::new();
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 3 * obs::RING_CAPACITY; // force overwrite-oldest
    let stop = Arc::new(AtomicBool::new(false));
    // Rings held by threads outside this test (e.g. other test threads that
    // recorded before blocking on the scope lock and have not exited yet).
    let held_elsewhere = obs::ring_count() - obs::idle_rings();

    // A span is torn iff its fields violate the writer's invariants:
    // end = start + 7777 and submission = worker << 32 | task.
    let check = |s: &Span| {
        if s.kind != 5 {
            return; // span from another recorder (none expected, but safe)
        }
        assert_eq!(s.end_ns, s.start_ns.wrapping_add(7777), "torn span {s:?}");
        assert_eq!(
            s.submission,
            ((s.worker as u64) << 32) | s.task as u64,
            "torn span {s:?}"
        );
    };

    let run_wave = || {
        // All writers pass a barrier before recording, so every wave has
        // exactly WRITERS concurrently-recording threads — the ring demand
        // is deterministic, not scheduler-dependent.
        let barrier = std::sync::Barrier::new(WRITERS);
        let barrier = &barrier;
        std::thread::scope(|sc| {
            for w in 0..WRITERS {
                sc.spawn(move || {
                    barrier.wait();
                    for i in 0..PER_WRITER {
                        let start = (w * PER_WRITER + i) as u64;
                        obs::record_span(Span {
                            submission: ((w as u64) << 32) | i as u64,
                            task: i as u32,
                            kind: 5,
                            worker: w as u32,
                            start_ns: start,
                            end_ns: start + 7777,
                        });
                    }
                });
            }
            // Concurrent readers must never observe a torn span while the
            // writers overwrite their rings.
            let reader_stop = Arc::clone(&stop);
            sc.spawn(move || {
                while !reader_stop.load(Ordering::Relaxed) {
                    for s in obs::snapshot_spans() {
                        check(&s);
                    }
                }
            });
            for s in obs::snapshot_spans() {
                check(&s);
            }
            stop.store(true, Ordering::Relaxed);
        });
        stop.store(false, Ordering::Relaxed);
    };

    // A ring is returned by its owner's thread-local destructor, which can
    // run slightly after the thread becomes joinable — poll until the
    // wave's rings are actually back on the free list before proceeding.
    let wait_for_returns = || {
        let t0 = std::time::Instant::now();
        while obs::ring_count() - obs::idle_rings() > held_elsewhere {
            assert!(
                t0.elapsed().as_secs() < 5,
                "rings were not returned on thread exit"
            );
            std::thread::yield_now();
        }
    };
    // Waves of fresh threads must reuse retired rings: across any number
    // of waves, ring memory stays bounded by the peak number of
    // *concurrent* recorders (at most WRITERS new rings ever), not by the
    // total number of threads spawned (3 * WRITERS here).
    let initial_rings = obs::ring_count();
    for _ in 0..3 {
        run_wave();
        wait_for_returns();
        assert!(
            obs::ring_count() <= initial_rings + WRITERS,
            "rings grew past peak concurrency: {} -> {}",
            initial_rings,
            obs::ring_count()
        );
    }
    // And the final snapshot holds only stable, untorn spans.
    for s in obs::snapshot_spans() {
        check(&s);
    }
}

#[test]
fn ge2bnd_spans_are_complete_and_well_nested_per_worker() {
    let scope = ScopedObs::new();
    let a = reference_matrix();
    let result = ge2bnd(&a, &reference_opts(4));

    let spans = kernel_spans(&scope);
    assert_eq!(
        spans.len(),
        result.num_tasks,
        "spans recorded != tasks executed"
    );

    // Workers execute serially, so each worker's spans must be disjoint in
    // time (well-nested degenerates to non-overlap for flat task spans).
    let mut by_worker: std::collections::BTreeMap<u32, Vec<Span>> = Default::default();
    for s in spans {
        assert!(s.end_ns >= s.start_ns, "negative-duration span {s:?}");
        by_worker.entry(s.worker).or_default().push(s);
    }
    for (worker, mut ws) in by_worker {
        ws.sort_by_key(|s| s.start_ns);
        for pair in ws.windows(2) {
            assert!(
                pair[1].start_ns >= pair[0].end_ns,
                "overlapping spans on worker {worker}: {pair:?}"
            );
        }
    }
}

#[test]
fn measured_critical_path_matches_section_iv_model() {
    let scope = ScopedObs::new();
    let a = reference_matrix();
    let result = ge2bnd(&a, &reference_opts(4));
    assert_eq!(result.algorithm, Algorithm::Bidiag);

    // Rebuild the exact DAG the run executed (same ops, same tile grid).
    let cfg = GenConfig::shared(NamedTree::Greedy);
    let ops = ge2bnd_ops(P, Q, Algorithm::Bidiag, &cfg);
    let graph = build_graph(&ops, Q, &BlockCyclic::single_node());
    assert_eq!(graph.len(), result.num_tasks);

    // The DAG's weighted critical path IS the Section IV model (the same
    // quantity `cp::measured_cp` feeds the sim and the paper's tables).
    assert_eq!(
        graph.critical_path(),
        cp::measured_cp(Algorithm::Bidiag, NamedTree::Greedy, P, Q)
    );

    // Reattach the measured spans to the DAG and recompute the longest
    // dependent chain from the trace.  Record-before-release makes this
    // deterministic: completeness, edge consistency, and the chain's task
    // count must all match the model.
    let v = validate_trace(&graph, &kernel_spans(&scope));
    assert_eq!(v.tasks_recorded, graph.len(), "incomplete trace");
    assert_eq!(
        v.edge_violations, 0,
        "a successor started before its predecessor ended"
    );
    assert_eq!(
        v.chain_tasks,
        graph.longest_chain_tasks(),
        "measured chain disagrees with the model"
    );
    assert!(v.matches_model(&graph));
    assert!(v.chain_ns <= v.makespan_ns);
    // Pin the reference numbers so a model regression cannot slip through
    // a compensating change in the trace analysis: 49 tasks, of which the
    // longest dependent chain visits 15.
    assert_eq!(v.tasks_recorded, 49);
    assert_eq!(v.chain_tasks, 15);

    // The same recorded spans export as a Perfetto-loadable Chrome trace.
    let json = obs::chrome_trace_json();
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"GEQRT\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    let path = std::env::temp_dir().join("bidiag_obs_test_trace.json");
    let path = path.to_str().expect("utf-8 temp path");
    obs::write_chrome_trace(path).expect("trace written");
    let on_disk = std::fs::read_to_string(path).expect("trace readable");
    assert_eq!(on_disk, json);
    let _ = std::fs::remove_file(path);
}

#[test]
fn threaded_ge2val_records_stage_and_pipeline_spans() {
    let scope = ScopedObs::new();
    let a = reference_matrix();
    let result = ge2val(&a, &reference_opts(4));
    assert!(
        result.ge2bnd.is_some(),
        "reference run takes the tiled path"
    );

    let spans = scope.spans();
    let count = |kind: u32| spans.iter().filter(|s| s.kind == kind).count();
    // One span per pipeline stage, on the calling thread.
    assert_eq!(count(obs::KIND_STAGE_GE2BND), 1);
    assert_eq!(count(obs::KIND_STAGE_BND2BD), 1);
    assert_eq!(count(obs::KIND_STAGE_BD2VAL), 1);
    // The threaded stages also traced their runtime tasks.
    assert!(
        count(obs::KIND_BND2BD) >= 1,
        "no bulge-chasing wavefront spans"
    );
    assert!(count(obs::KIND_BD2VAL) >= 1, "no solver task spans");
    // Stage spans bracket their tasks' spans.
    let stage = spans
        .iter()
        .find(|s| s.kind == obs::KIND_STAGE_BND2BD)
        .unwrap();
    for s in spans.iter().filter(|s| s.kind == obs::KIND_BND2BD) {
        assert!(s.start_ns >= stage.start_ns && s.end_ns <= stage.end_ns);
    }
    // The trace/snapshot header carries the dispatched SIMD backend.
    let snap = obs::registry().snapshot();
    let backend = snap.meta.get("simd_backend").expect("backend recorded");
    assert!(!backend.is_empty());
}

#[test]
fn session_metrics_wire_queue_wait_latency_and_dqds_signals() {
    let _scope = ScopedObs::new();
    obs::registry().reset();

    let requests = 8usize;
    {
        let session = SvdSession::with_config(
            Ge2Options::new(NB).with_threads(2),
            SessionConfig {
                max_in_flight: 2,
                admission: AdmissionPolicy::Block,
            },
        );
        let (small, sigma) = latms(32, 32, &SpectrumKind::Geometric { cond: 100.0 }, 3);
        for _ in 0..requests {
            let sv = session.submit(&small).unwrap().wait().unwrap();
            assert!(singular_values_match(&sv, &sigma, 1.0e-8));
        }
    }

    let snap = obs::registry().snapshot();
    assert_eq!(snap.submissions, requests as u64);
    assert_eq!(snap.latency.count, requests as u64);
    assert_eq!(snap.queue_wait.count, requests as u64);
    assert_eq!(snap.compute.count, requests as u64);
    assert!(snap.in_flight_peak >= 1 && snap.in_flight_peak <= 2);
    assert!(snap.tasks_executed >= requests as u64);
    // n = 32 takes the direct path whose solver is the dqds ladder: the
    // per-solve `DqdsStats` must have been aggregated into the registry.
    assert!(snap.dqds_passes > 0, "dqds passes not recorded");
    assert!(snap.dqds_segments > 0, "dqds segments not recorded");
    // Histogram sanity: latency >= compute on every submission, so the
    // means must be ordered too.
    assert!(snap.latency.mean() >= snap.compute.mean());
    // Both renderings carry the counters.
    let text = format!("{snap}");
    assert!(text.contains("submissions"));
    let json = snap.to_json();
    assert!(json.contains(&format!("\"submissions\":{requests}")));
}
