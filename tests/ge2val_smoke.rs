//! Smoke test enforcing the claim made by the `bidiag_repro` crate-level
//! doctest as a real test: GE2VAL on a small LATMS matrix with a known
//! geometric spectrum recovers the singular values to 1e-10.

use bidiag_repro::prelude::*;

#[test]
fn ge2val_recovers_geometric_spectrum_to_1e10() {
    let (a, sigma) = latms(48, 32, &SpectrumKind::Geometric { cond: 1.0e3 }, 1);
    let result = ge2val(&a, &Ge2Options::new(8));
    assert!(
        singular_values_match(&result.singular_values, &sigma, 1.0e-10),
        "max singular value error {:e} exceeds 1e-10",
        singular_value_error(&result.singular_values, &sigma)
    );
}

#[test]
fn ge2val_recovers_geometric_spectrum_for_both_algorithms() {
    for alg in [AlgorithmChoice::Bidiag, AlgorithmChoice::RBidiag] {
        let (a, sigma) = latms(60, 24, &SpectrumKind::Geometric { cond: 1.0e4 }, 7);
        let result = ge2val(&a, &Ge2Options::new(6).with_algorithm(alg));
        assert!(
            singular_values_match(&result.singular_values, &sigma, 1.0e-10),
            "{alg:?}: max error {:e}",
            singular_value_error(&result.singular_values, &sigma)
        );
    }
}
