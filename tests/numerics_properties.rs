//! Property-based tests of the numerical kernels and of the full pipeline on
//! randomly generated spectra and shapes.

use bidiag_kernels::jacobi::jacobi_singular_values;
use bidiag_kernels::qr::{build_q, geqrt};
use bidiag_kernels::Workspace;
use bidiag_matrix::checks::{orthogonality_error, relative_error};
use bidiag_repro::prelude::*;
use proptest::prelude::*;

fn spectrum_strategy(k: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..10.0, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GE2VAL recovers an arbitrary prescribed spectrum to machine precision
    /// for random shapes, tile sizes, algorithms and trees.
    #[test]
    fn ge2val_recovers_arbitrary_spectra(
        raw in spectrum_strategy(10),
        extra_rows in 0usize..30,
        nb in 3usize..9,
        rbidiag in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let n = raw.len();
        let m = n + extra_rows;
        let (a, sigma) = latms(m, n, &SpectrumKind::Explicit(raw), seed);
        let alg = if rbidiag { AlgorithmChoice::RBidiag } else { AlgorithmChoice::Bidiag };
        let sv = ge2val(&a, &Ge2Options::new(nb).with_algorithm(alg)).singular_values;
        prop_assert!(singular_values_match(&sv, &sigma, 1e-9),
            "spectrum lost for {}x{} nb={} rbidiag={}", m, n, nb, rbidiag);
    }

    /// Tiled GE2VAL agrees with the (independent) one-sided Jacobi SVD on
    /// random Gaussian matrices.
    #[test]
    fn ge2val_matches_jacobi(m in 6usize..40, dn in 0usize..20, nb in 3usize..8, seed in 0u64..1000) {
        let n = (m - dn.min(m - 1)).max(1);
        let a = random_gaussian(m, n, seed);
        let sv = ge2val(&a, &Ge2Options::new(nb)).singular_values;
        let oracle = jacobi_singular_values(&a);
        prop_assert!(singular_values_match(&sv, &oracle, 1e-9));
    }

    /// The tile QR kernel always produces an orthogonal factor and an exact
    /// factorization.
    #[test]
    fn geqrt_factorization_properties(m in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
        let a0 = random_gaussian(m, n, seed);
        let mut a = a0.clone();
        let tf = geqrt(&mut a, &mut Workspace::new());
        let q = build_q(&a, tf.taus());
        let r = Matrix::from_fn(m, n, |i, j| if j >= i { a.get(i, j) } else { 0.0 });
        prop_assert!(orthogonality_error(&q) < 1e-12);
        prop_assert!(relative_error(&a0, &q.matmul(&r)) < 1e-12);
    }

    /// Band reduction preserves singular values for random bandwidths.
    #[test]
    fn band_reduction_preserves_spectrum(n in 2usize..28, bw in 1usize..8, seed in 0u64..1000) {
        let bw = bw.min(n - 1).max(1);
        let g = random_gaussian(n, n, seed);
        let mut band = BandMatrix::zeros(n, bw);
        for i in 0..n {
            for j in i..=(i + bw).min(n - 1) {
                band.set(i, j, g.get(i, j));
            }
        }
        let reference = jacobi_singular_values(&band.to_dense());
        let mut work = band.clone();
        let bd = work.reduce_to_bidiagonal();
        let reduced = bidiagonal_singular_values(&bd.diag, &bd.superdiag);
        prop_assert!(singular_values_match(&reference, &reduced, 1e-9));
    }

    /// The Frobenius norm is preserved by the whole GE2BND stage
    /// (orthogonal invariance), for both algorithms.
    #[test]
    fn ge2bnd_preserves_frobenius_norm(m in 4usize..40, dn in 0usize..20, nb in 3usize..8, seed in 0u64..1000) {
        let n = (m - dn.min(m - 1)).max(2).min(m);
        let a = random_gaussian(m, n, seed);
        for alg in [AlgorithmChoice::Bidiag, AlgorithmChoice::RBidiag] {
            let r = ge2bnd(&a, &Ge2Options::new(nb).with_algorithm(alg));
            prop_assert!((r.band.norm_fro() - a.norm_fro()).abs() < 1e-9 * a.norm_fro());
        }
    }
}
