//! Property-based robustness tests of the hardened service plane: hostile
//! inputs (NaN / infinity / denormal) pushed through every fallible entry
//! point must come back as a typed [`SvdError`] or as finite singular
//! values — never as a panic, and never as a hang (every wait in this file
//! is bounded by [`SvdJob::wait_timeout`]).

use bidiag_repro::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

/// A generous per-job deadline: these problems solve in microseconds, so a
/// deadline hit means a liveness bug, not a slow machine.
const DEADLINE: Duration = Duration::from_secs(30);

/// How the fuzzer corrupts one entry of an otherwise healthy matrix.
fn corrupt(a: &mut Matrix, kind: usize, row: usize, col: usize) -> bool {
    let (r, c) = (row % a.rows(), col % a.cols());
    match kind {
        0 => false, // healthy
        1 => {
            a.set(r, c, f64::NAN);
            true
        }
        2 => {
            a.set(r, c, f64::INFINITY);
            true
        }
        3 => {
            a.set(r, c, f64::NEG_INFINITY);
            true
        }
        // Denormals are finite: the solver must accept and survive them.
        _ => {
            a.set(r, c, 4.9e-324);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `try_ge2val` on corrupted matrices: non-finite entries are rejected
    /// as `NonFiniteInput`; finite (including denormal) entries produce
    /// finite spectra. No case may panic.
    #[test]
    fn try_ge2val_never_panics_on_hostile_input(
        m in 1usize..40,
        dn in 0usize..12,
        kind in 0usize..5,
        row in 0usize..64,
        col in 0usize..64,
        nb in 3usize..9,
        seed in 0u64..1000,
    ) {
        let n = (m - dn.min(m - 1)).max(1);
        let mut a = random_gaussian(m, n, seed);
        let poisoned = corrupt(&mut a, kind, row, col);
        match try_ge2val(&a, &Ge2Options::new(nb)) {
            Ok(result) => {
                prop_assert!(!poisoned, "non-finite input was accepted");
                prop_assert!(result.singular_values.iter().all(|v| v.is_finite()),
                    "non-finite spectrum from finite input");
            }
            Err(SvdError::NonFiniteInput { row, col, value }) => {
                prop_assert!(poisoned, "finite input rejected as non-finite");
                prop_assert!(!value.is_finite());
                prop_assert!(row < a.rows() && col < a.cols());
                prop_assert!(!a.get(row, col).is_finite());
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The same contract through the batched session, with every wait
    /// bounded: submission either rejects the poison or yields a finite
    /// spectrum within the deadline.
    #[test]
    fn session_submit_never_panics_or_hangs_on_hostile_input(
        m in 1usize..48,
        dn in 0usize..12,
        kind in 0usize..5,
        row in 0usize..64,
        col in 0usize..64,
        seed in 0u64..1000,
    ) {
        let n = (m - dn.min(m - 1)).max(1);
        let mut a = random_gaussian(m, n, seed);
        let poisoned = corrupt(&mut a, kind, row, col);
        let session = SvdSession::new(2);
        match session.submit(&a) {
            Ok(job) => {
                prop_assert!(!poisoned, "non-finite input was admitted");
                let sv = job
                    .wait_timeout(DEADLINE)
                    .unwrap_or_else(|e| panic!("job failed: {e}"));
                prop_assert_eq!(sv.len(), m.min(n));
                prop_assert!(sv.iter().all(|v| v.is_finite()));
            }
            Err(SvdError::NonFiniteInput { .. }) => {
                prop_assert!(poisoned, "finite input rejected as non-finite");
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}

/// The memory-bound guarantee of bounded admission: ten thousand
/// submissions against a `max_in_flight = 32` session never hold more than
/// 32 live job graphs — the blocking policy parks the submitter instead.
#[test]
fn ten_thousand_submissions_never_exceed_the_admission_bound() {
    const CAP: usize = 32;
    let session = SvdSession::with_config(
        Ge2Options::new(16)
            .with_threads(4)
            .with_direct_crossover(DIRECT_CROSSOVER),
        SessionConfig {
            max_in_flight: CAP,
            admission: AdmissionPolicy::Block,
        },
    );
    let problems: Vec<Matrix> = (0..8u64).map(|i| random_gaussian(8, 8, 60 + i)).collect();
    let expected: Vec<Vec<f64>> = problems
        .iter()
        .map(|a| ge2val(a, session.options()).singular_values)
        .collect();
    let mut jobs = Vec::with_capacity(10_000);
    for i in 0..10_000usize {
        jobs.push((
            i % problems.len(),
            session.submit(&problems[i % problems.len()]).unwrap(),
        ));
    }
    assert!(
        session.in_flight_peak() <= CAP,
        "peak {} exceeded the cap {CAP}",
        session.in_flight_peak()
    );
    for (idx, job) in jobs {
        let sv = job.wait_timeout(DEADLINE).expect("job within deadline");
        assert_eq!(
            expected[idx], sv,
            "bounded admission changed the arithmetic"
        );
    }
}
