//! Property-based tests (proptest) of the schedule generators, the task
//! graphs and the critical-path results of Section IV.

use bidiag_core::cp;
use bidiag_core::exec::build_graph;
use bidiag_repro::prelude::*;
use bidiag_trees::{greedy_qr_schedules, panel_schedule, validate_schedule, TreeConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The measured DAG critical path equals the paper's per-step sum for
    /// every static tree and shape.
    #[test]
    fn dag_critical_path_matches_formula(p in 1usize..14, extra in 0usize..10) {
        let q = p;
        let p = p + extra;
        for tree in [NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy] {
            let measured = cp::measured_cp(Algorithm::Bidiag, tree, p, q);
            let formula = cp::bidiag_cp(tree, p, q);
            prop_assert!((measured - formula).abs() < 1e-9,
                "{tree:?} p={p} q={q}: {measured} vs {formula}");
        }
    }

    /// Greedy critical paths never exceed flat-tree critical paths.
    #[test]
    fn greedy_is_never_worse_than_flat_trees(p in 1usize..20, extra in 0usize..16) {
        let q = p;
        let p = p + extra;
        let g = cp::bidiag_cp(NamedTree::Greedy, p, q);
        prop_assert!(g <= cp::bidiag_cp(NamedTree::FlatTt, p, q) + 1e-9);
        prop_assert!(g <= cp::bidiag_cp(NamedTree::FlatTs, p, q) + 1e-9);
    }

    /// Every tree configuration produces a valid panel reduction on any row set.
    #[test]
    fn panel_schedules_are_valid(n in 1usize..60, domain in 1usize..9, top in 0usize..3) {
        let rows: Vec<usize> = (0..n).collect();
        let cfg = TreeConfig {
            domain: match domain { 1 => bidiag_repro::trees::DomainSize::One,
                                   8 => bidiag_repro::trees::DomainSize::Whole,
                                   d => bidiag_repro::trees::DomainSize::Fixed(d) },
            top: match top { 0 => bidiag_repro::trees::TopTree::Flat,
                             1 => bidiag_repro::trees::TopTree::Greedy,
                             _ => bidiag_repro::trees::TopTree::Fibonacci },
        };
        let s = panel_schedule(&rows, &cfg);
        prop_assert_eq!(validate_schedule(&rows, &s), Ok(()));
    }

    /// The pipelined greedy QR schedules are valid reductions for every column.
    #[test]
    fn pipelined_greedy_schedules_are_valid(p in 1usize..40, q in 1usize..10) {
        let q = q.min(p);
        let schedules = greedy_qr_schedules(p, q);
        for (k, sched) in schedules.iter().enumerate() {
            let rows: Vec<usize> = (k..p).collect();
            prop_assert_eq!(validate_schedule(&rows, sched), Ok(()), "column {}", k);
        }
    }

    /// The DAG of any algorithm/tree pair has: total weight >= critical path,
    /// and the critical path of R-BIDIAG on a square matrix is at least the
    /// critical path of BIDIAG (Section IV.B).
    #[test]
    fn graph_invariants(q in 2usize..9) {
        for tree in [NamedTree::FlatTs, NamedTree::FlatTt, NamedTree::Greedy] {
            for alg in [Algorithm::Bidiag, Algorithm::RBidiag] {
                let ops = ge2bnd_ops(q + 2, q, alg, &GenConfig::shared(tree));
                let g = build_graph(&ops, q, &BlockCyclic::single_node());
                prop_assert!(g.total_weight() + 1e-9 >= g.critical_path());
            }
        }
        let b = cp::measured_cp(Algorithm::Bidiag, NamedTree::Greedy, q, q);
        let r = cp::measured_cp(Algorithm::RBidiag, NamedTree::Greedy, q, q);
        prop_assert!(b <= r + 1e-9, "square: BIDIAG {} should not exceed R-BIDIAG {}", b, r);
    }

    /// Simulated makespans are sandwiched between the critical path and the
    /// sequential time, and do not increase with the core count.
    #[test]
    fn simulated_makespan_bounds(q in 2usize..7, extra in 0usize..6) {
        let p = q + extra;
        let ops = bidiag_ops(p, q, &GenConfig::shared(NamedTree::Greedy));
        let g = build_graph(&ops, q, &BlockCyclic::single_node());
        let cp_len = g.critical_path();
        let seq = g.total_weight();
        let mut prev = f64::INFINITY;
        for cores in [1usize, 2, 4, 8, 64] {
            let mk = simulate(&g, &MachineModel::shared_memory(cores)).makespan;
            prop_assert!(mk <= seq + 1e-9);
            prop_assert!(mk + 1e-9 >= cp_len);
            prop_assert!(mk <= prev + 1e-6);
            prev = mk;
        }
    }
}
