//! End-to-end integration tests of the full GE2BND -> BND2BD -> BD2VAL
//! pipeline across algorithms, trees, shapes and execution back-ends,
//! cross-validated against the one-sided Jacobi oracle and the one-stage
//! baselines (which share no code with the tiled pipeline).

use bidiag_baselines::{chan_singular_values, one_stage_singular_values};
use bidiag_kernels::jacobi::jacobi_singular_values;
use bidiag_repro::prelude::*;

#[test]
fn tiled_pipeline_matches_jacobi_oracle_on_random_matrices() {
    for (m, n, seed) in [(37usize, 23usize, 1u64), (50, 50, 2), (64, 17, 3)] {
        let a = random_gaussian(m, n, seed);
        let tiled = ge2val(&a, &Ge2Options::new(8)).singular_values;
        let oracle = jacobi_singular_values(&a);
        assert!(
            singular_values_match(&tiled, &oracle, 1e-10),
            "mismatch with Jacobi oracle for {m}x{n}"
        );
    }
}

#[test]
fn all_algorithms_and_baselines_agree() {
    let (a, sigma) = latms(60, 24, &SpectrumKind::Geometric { cond: 1.0e5 }, 7);
    let tiled_b = ge2val(
        &a,
        &Ge2Options::new(8).with_algorithm(AlgorithmChoice::Bidiag),
    )
    .singular_values;
    let tiled_r = ge2val(
        &a,
        &Ge2Options::new(8).with_algorithm(AlgorithmChoice::RBidiag),
    )
    .singular_values;
    let one_stage = one_stage_singular_values(&a);
    let chan = chan_singular_values(&a);
    for (name, sv) in [
        ("tiled BIDIAG", &tiled_b),
        ("tiled R-BIDIAG", &tiled_r),
        ("one-stage", &one_stage),
        ("Chan", &chan),
    ] {
        assert!(
            singular_values_match(sv, &sigma, 1e-10),
            "{name} lost the prescribed spectrum"
        );
    }
}

#[test]
fn every_tree_and_thread_count_gives_identical_results() {
    let (a, _) = latms(45, 30, &SpectrumKind::OneLarge { cond: 1.0e6 }, 13);
    let reference = ge2val(&a, &Ge2Options::new(8)).singular_values;
    for tree in [
        NamedTree::FlatTs,
        NamedTree::FlatTt,
        NamedTree::Greedy,
        NamedTree::Auto {
            gamma: 2.0,
            ncores: 3,
        },
    ] {
        for threads in [1usize, 3] {
            let sv = ge2val(
                &a,
                &Ge2Options::new(8).with_tree(tree).with_threads(threads),
            )
            .singular_values;
            assert!(
                singular_values_match(&reference, &sv, 1e-12),
                "tree {tree:?} with {threads} threads diverged"
            );
        }
    }
}

#[test]
fn band_output_has_the_expected_structure() {
    let (a, _) = latms(48, 32, &SpectrumKind::Uniform, 5);
    let r = ge2bnd(
        &a,
        &Ge2Options::new(8).with_algorithm(AlgorithmChoice::Bidiag),
    );
    let band = r.band.to_dense();
    assert_eq!(band.rows(), 32);
    assert!(band.upper_bandwidth(1e-10) <= 8, "band wider than nb");
    // Norm preservation (orthogonal invariance).
    assert!((r.band.norm_fro() - a.norm_fro()).abs() < 1e-9 * a.norm_fro());
}

#[test]
fn difficult_spectra_are_preserved() {
    // Clustered and tiny singular values.
    let spectrum = vec![1.0, 1.0, 1.0, 1e-3, 1e-3, 1e-7, 1e-9, 0.0];
    let (a, sigma) = latms(40, 8, &SpectrumKind::Explicit(spectrum), 11);
    let sv = ge2val(&a, &Ge2Options::new(4)).singular_values;
    // Absolute accuracy relative to sigma_max is what orthogonal reductions guarantee.
    assert!(singular_values_match(&sv, &sigma, 1e-12));
}

#[test]
fn identity_and_rank_one_edge_cases() {
    let sv = ge2val(&Matrix::identity(20), &Ge2Options::new(4)).singular_values;
    assert!(singular_values_match(&sv, &[1.0; 20], 1e-12));

    // Rank-one matrix: u * v^T.
    let u = random_gaussian(30, 1, 1);
    let v = random_gaussian(12, 1, 2);
    let a = u.matmul(&v.transpose());
    let sv = ge2val(&a, &Ge2Options::new(4)).singular_values;
    let expected = u.norm_fro() * v.norm_fro();
    assert!((sv[0] - expected).abs() < 1e-10 * expected);
    for s in &sv[1..] {
        assert!(s.abs() < 1e-10 * expected);
    }
}
