//! Full-pipeline forced-backend equivalence: GE2VAL (GE2BND bulge-chased to
//! bidiagonal, then BD2VAL) run end-to-end under the scalar and AVX2 SIMD
//! backends must recover the same spectrum.
//!
//! Two pins per case:
//!
//! * both backends match the *prescribed* LATMS spectrum to `1e-10` (the
//!   pipeline's own accuracy contract — a backend must not merely be
//!   self-consistent, it must be right), and
//! * the two backends match *each other* to `1e-12`: tighter than the
//!   accuracy bound, because the only divergence is fused-vs-unfused
//!   multiply-adds propagated through orthogonal transforms, which are
//!   norm-preserving and cannot amplify the gap.

use bidiag_matrix::simd::{self, SimdBackend};
use bidiag_repro::prelude::*;

fn under_both(f: impl Fn() -> Vec<f64>) -> Option<(Vec<f64>, Vec<f64>)> {
    if !simd::avx2_available() {
        eprintln!("skipping cross-backend test: AVX2+FMA not available");
        return None;
    }
    Some((
        simd::with_forced_backend(SimdBackend::Scalar, &f),
        simd::with_forced_backend(SimdBackend::Avx2, &f),
    ))
}

#[test]
fn ge2val_spectra_agree_across_backends() {
    for (m, n, nb, cond, seed) in [
        (48usize, 32usize, 8usize, 1.0e3, 1u64),
        (60, 24, 6, 1.0e4, 7),
        (33, 33, 5, 1.0e2, 11),
    ] {
        let (a, sigma) = latms(m, n, &SpectrumKind::Geometric { cond }, seed);
        for alg in [AlgorithmChoice::Bidiag, AlgorithmChoice::RBidiag] {
            let Some((s, v)) =
                under_both(|| ge2val(&a, &Ge2Options::new(nb).with_algorithm(alg)).singular_values)
            else {
                return;
            };
            assert!(
                singular_values_match(&s, &sigma, 1.0e-10),
                "{alg:?} scalar backend lost the spectrum: {:e}",
                singular_value_error(&s, &sigma)
            );
            assert!(
                singular_values_match(&v, &sigma, 1.0e-10),
                "{alg:?} avx2 backend lost the spectrum: {:e}",
                singular_value_error(&v, &sigma)
            );
            assert!(
                singular_values_match(&s, &v, 1.0e-12),
                "{alg:?} backends diverged: {:e} ({m}x{n} nb={nb})",
                singular_value_error(&s, &v)
            );
        }
    }
}
